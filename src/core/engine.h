#ifndef IQ_CORE_ENGINE_H_
#define IQ_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <string>

#include "core/combinatorial.h"
#include "core/epoch.h"
#include "core/exhaustive.h"
#include "core/iq_algorithms.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "topk/topk.h"
#include "util/annotations.h"
#include "util/thread_pool.h"

namespace iq {

/// Processing scheme for an improvement query — the four schemes compared in
/// the paper's evaluation (§6.1) plus the optimal exhaustive option.
enum class IqScheme {
  kEfficient,   // proposed: ESE over the subdomain index
  kRta,         // RTA-IQ: reverse top-k threshold algorithm evaluation
  kGreedy,      // simple greedy: always the cheapest single query
  kRandom,      // random strategy sampling
  kExhaustive,  // optimal (tiny inputs only)
};

const char* IqSchemeName(IqScheme scheme);

struct EngineOptions {
  SubdomainIndexOptions index;
  /// Worker threads for the parallel execution layer (DESIGN.md §8): the
  /// subdomain-index build/maintenance ranking, greedy candidate
  /// generation + ESE evaluation, and SolveBatch all fan out over an
  /// engine-owned pool of this many threads. 0 (the default) creates no
  /// pool and preserves the fully serial code path; any value >= 1 routes
  /// through the pool with results bit-identical to serial (deterministic
  /// reduction — see tests/parallel_diff_test.cc).
  int num_threads = 0;
  /// Chunking for the engine's pooled loops (engine.solve_batch and the
  /// candidate loops of engine-driven searches). Batch items and candidate
  /// bodies are heavy-tailed, so work-stealing claims are the default;
  /// results are bit-identical under either policy (util/thread_pool.h).
  ChunkPolicy chunk_policy = ChunkPolicy::kDynamic;
  /// Live observability endpoint (DESIGN.md §9). -1 (the default) serves
  /// nothing; 0 starts the /metrics exporter on a kernel-chosen loopback
  /// port (read it back via exporter()->port()); any other value binds
  /// 127.0.0.1:<port>. The exporter is engine-owned and stops with it.
  int exporter_port = -1;
  /// Flight-recorder post-mortem (DESIGN.md §9). When non-empty, any engine
  /// call that returns a non-OK status also dumps the event log as JSONL to
  /// this path, so the window of events leading up to the failure survives
  /// the process. Empty = no automatic dumps.
  std::string event_dump_path;
  /// Tail-based slow-solve capture (DESIGN.md §14). 0 (the default) leaves
  /// causal tracing off. Any value > 0 enables the trace collector and
  /// retains every root solve (MinCost / MaxHit / ApplyStrategy /
  /// SolveBatch) whose wall clock reaches this many nanoseconds — plus
  /// every erred solve — in the bounded store served at /tracez. Tracing is
  /// observation-only: results stay byte-identical with it on or off
  /// (tests/parallel_diff_test.cc).
  int64_t slow_trace_nanos = 0;
  /// With capture on, also retain the first N root solves unconditionally
  /// (warmup examples for a fresh process before anything is slow).
  int slow_trace_keep_first = 0;
  /// Capacity of the retained-trace store; oldest traces drop first.
  int slow_trace_max_retained = 32;
};

/// One unit of work for IqEngine::SolveBatch: a Min-Cost or Max-Hit
/// improvement query against one target object.
struct BatchItem {
  enum class Kind { kMinCost, kMaxHit };
  Kind kind = Kind::kMinCost;
  int target = -1;
  /// Min-Cost goal (ignored by kMaxHit).
  int tau = 1;
  /// Max-Hit budget (ignored by kMinCost).
  double beta = 0.0;
  /// Per-item options. BatchItem solves always run their *inner* candidate
  /// loops serially (items are the parallel unit); any pool set here is
  /// ignored.
  IqOptions options;
};

/// The analytic tool's core facade (§6.1): owns the dataset, the query
/// workload, the objects-as-functions view and the subdomain index, and
/// exposes improvement queries plus live data maintenance. This is the
/// public API the examples and the DBMS integration build on.
///
/// Thread safety — epoch snapshots (DESIGN.md §12): the engine's entire
/// logical state lives in an immutable EpochSnapshot published through an
/// atomic pointer. Readers (HitCount, TopK, the rank operators, MinCost,
/// MaxHit, SolveBatch, CheckInvariants) pin the current epoch via
/// Snapshot() and never take the engine mutex — they proceed lock-free
/// while writers mutate concurrently, and every answer is consistent as of
/// one epoch. Writers (AddQuery, RemoveQuery, AddObject, RemoveObject,
/// ApplyStrategy) serialize on the internal mutex only to build a
/// copy-on-write delta against the current epoch and publish the next one;
/// a failed update discards the unpublished delta, leaving the engine
/// exactly at the previous epoch. Superseded epochs are retired when their
/// last pinned reader drops them. The locking discipline is
/// compiler-verified under clang -Wthread-safety.
class IqEngine {
 public:
  /// All queries share one utility `form` (use LinearForm::Identity(dim) for
  /// the plain linear utility, Linearize() for a complex one, or a
  /// UnifiedFamily-derived form for heterogeneous workloads).
  static Result<IqEngine> Create(Dataset dataset, LinearForm form,
                                 std::vector<TopKQuery> queries,
                                 EngineOptions options = {});

  /// Moves lock `other.mu_` (and, for assignment, both engine mutexes via
  /// the ranked MutexLockPair, which imposes address order internally) for
  /// the duration of the member transfer, so a move racing a concurrent
  /// *writer* on `other` is a blocked wait instead of a torn transfer.
  /// (Concurrent readers hold pinned epochs, which stay valid across the
  /// move; new reads on the moved-from engine are the caller's bug, as with
  /// any moved-from object.) The move *constructor* keeps an
  /// IQ_NO_THREAD_SAFETY_ANALYSIS escape only because it writes this'
  /// members before the object is published — there is no lock of `this` to
  /// hold yet; assignment is fully analyzed.
  IqEngine(IqEngine&& other) noexcept IQ_NO_THREAD_SAFETY_ANALYSIS;
  IqEngine& operator=(IqEngine&& other) noexcept;
  IqEngine(const IqEngine&) = delete;
  IqEngine& operator=(const IqEngine&) = delete;

  /// Pins the currently published epoch (DESIGN.md §12). The returned
  /// handle keeps that epoch's dataset/queries/view/index immutable and
  /// alive for the handle's lifetime, no matter how many updates other
  /// threads apply meanwhile. Lock-free; never blocks behind a writer.
  EpochHandle Snapshot() const {
    return EpochHandle(epoch_.load(std::memory_order_acquire));
  }

  /// Structural access into the *current* epoch. The references are stable
  /// only until the next successful mutation publishes a new epoch and the
  /// old one retires — callers that overlap reads with updates should pin
  /// an epoch via Snapshot() instead.
  const Dataset& dataset() const { return *CurrentEpoch()->dataset; }
  const QuerySet& queries() const { return *CurrentEpoch()->queries; }
  const FunctionView& view() const { return *CurrentEpoch()->view; }
  const SubdomainIndex& index() const { return *CurrentEpoch()->index; }

  /// Number of queries currently hit by an object (reverse top-k count).
  int HitCount(int object) const;
  std::vector<int> HitSet(int object) const;

  /// Evaluates one ad-hoc top-k query (weights in the utility's original
  /// weight space).
  Result<std::vector<ScoredObject>> TopK(const Vec& weights, int k) const;

  // ---- Related rank-aware operators (paper §2) ----

  /// Reverse top-k (Vlachou et al.): the queries whose top-k contains the
  /// object — identical to HitSet, provided under the literature name.
  std::vector<int> ReverseTopK(int object) const;

  /// The object's rank under query q: 1 + number of active competitors
  /// scoring strictly better (ties resolved by id, matching TopKScan).
  Result<int> RankUnderQuery(int object, int q) const;

  /// Reverse k-ranks (Zhang et al.): the k queries where the object ranks
  /// best, as (query id, rank) pairs ordered by ascending rank.
  Result<std::vector<std::pair<int, int>>> ReverseKRanks(int object,
                                                         int k) const;

  /// The best rank the object achieves across the current workload (a
  /// workload-restricted analogue of the maximum rank query of Mouratidis
  /// et al., which optimizes over all possible utility functions).
  Result<int> BestWorkloadRank(int object) const;

  // ---- Improvement queries ----
  Result<IqResult> MinCost(int target, int tau, const IqOptions& options = {},
                           IqScheme scheme = IqScheme::kEfficient) const;
  Result<IqResult> MaxHit(int target, double beta,
                          const IqOptions& options = {},
                          IqScheme scheme = IqScheme::kEfficient) const;
  Result<MultiIqResult> MultiMinCost(const std::vector<int>& targets, int tau,
                                     const std::vector<IqOptions>& options)
      const;
  Result<MultiIqResult> MultiMaxHit(const std::vector<int>& targets,
                                    double beta,
                                    const std::vector<IqOptions>& options)
      const;

  /// Solves many independent improvement queries against one pinned epoch,
  /// fanning the items out over the engine pool (EngineOptions::num_threads;
  /// serial when 0). The whole batch reads the epoch current at entry —
  /// updates landing mid-batch publish newer epochs but never perturb the
  /// running batch. Results come back in item order. Determinism contract:
  /// equal inputs against an equal epoch yield byte-identical results for
  /// every num_threads value, and the first (lowest-index) failing item's
  /// error is returned — see tests/parallel_diff_test.cc.
  Result<std::vector<IqResult>> SolveBatch(
      const std::vector<BatchItem>& items,
      IqScheme scheme = IqScheme::kEfficient) const;

  /// SolveBatch against an explicitly pinned epoch: the caller chooses the
  /// snapshot (e.g. one pinned before a burst of updates) instead of the
  /// engine pinning the current one. The determinism oracle in
  /// tests/parallel_diff_test.cc uses this to prove a batch is a pure
  /// function of its epoch even while writers churn the engine.
  Result<std::vector<IqResult>> SolveBatchOn(
      const EpochHandle& snap, const std::vector<BatchItem>& items,
      IqScheme scheme = IqScheme::kEfficient) const;

  /// The engine's worker pool; nullptr when num_threads was 0.
  ThreadPool* pool() const { return pool_.get(); }

  /// The live /metrics endpoint; nullptr when exporter_port was -1.
  const MetricsExporter* exporter() const { return exporter_.get(); }

  // ---- Live maintenance (§4.3) ----
  Result<int> AddQuery(TopKQuery q) IQ_EXCLUDES(mu_);
  Status RemoveQuery(int q) IQ_EXCLUDES(mu_);
  Result<int> AddObject(Vec attrs) IQ_EXCLUDES(mu_);
  Status RemoveObject(int id) IQ_EXCLUDES(mu_);
  /// Permanently applies an improvement strategy to an object. In Debug
  /// builds, every call cross-checks the ESE cached state against naive
  /// re-evaluation and re-ranks one sampled subdomain (round robin); a
  /// stale cache aborts via IQ_DCHECK instead of returning wrong counts.
  Status ApplyStrategy(int target, const Vec& strategy) IQ_EXCLUDES(mu_);

  // ---- Observability ----

  /// Point-in-time snapshot of every engine metric (counters, gauges and
  /// latency histograms under the iq.* naming scheme; see DESIGN.md
  /// "Observability"). The registry is process-global, so the snapshot also
  /// covers work done through other engines in the same process; call
  /// MetricsRegistry::Global().Reset() first for a per-workload reading.
  MetricsSnapshot GetStatsSnapshot() const;

  // ---- Correctness tooling ----

  /// Deep validation of the engine's cached state (the subdomain index and
  /// its R-tree) against the pinned current epoch; see
  /// SubdomainIndex::CheckInvariants.
  Status CheckInvariants() const;

 private:
  /// A writer's in-flight copy-on-write delta (DESIGN.md §12): the next
  /// epoch's four parts, sharing everything with the current epoch except
  /// the owners this mutation touches. Built and mutated only under mu_;
  /// either published wholesale or discarded wholesale.
  struct Delta {
    uint64_t epoch = 0;
    std::shared_ptr<const Dataset> dataset;
    std::shared_ptr<const QuerySet> queries;
    std::shared_ptr<const FunctionView> view;
    std::shared_ptr<SubdomainIndex> index;
    // Mutable aliases into the parts this delta copied (null for shared,
    // untouched parts).
    Dataset* mutable_dataset = nullptr;
    QuerySet* mutable_queries = nullptr;
    FunctionView* mutable_view = nullptr;
  };
  /// Which owners the mutation touches: object mutations copy the dataset
  /// and rebind the view; query mutations copy the query set. The index is
  /// always CloneCow'd (cells shared until a maintenance hook touches them).
  enum class DeltaKind { kObjects, kQueries };

  IqEngine(std::shared_ptr<const EpochSnapshot> snapshot,
           std::unique_ptr<ThreadPool> pool,
           std::unique_ptr<MetricsExporter> exporter,
           std::string event_dump_path, ChunkPolicy chunk_policy);

  /// The published snapshot; readers' single acquire load.
  std::shared_ptr<const EpochSnapshot> CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  Delta BeginDelta(DeltaKind kind) IQ_REQUIRES(mu_);
  /// Atomic publish of the delta as the next epoch: the swap is the linear-
  /// ization point of the mutation; the superseded epoch retires when its
  /// last pin drops. Also advances the iq.index.epoch gauge.
  void PublishLocked(Delta delta) IQ_REQUIRES(mu_);

  /// Flight-recorder post-mortem hook: on a non-OK status, records an error
  /// event (stamped with the failing solve's causal trace id when tracing
  /// is on) and (when EngineOptions::event_dump_path is set) dumps the
  /// event ring as JSONL there. Always returns `st` so call sites can
  /// tail-call.
  Status NoteOutcome(Status st, uint64_t trace_id = 0) const;

  /// ApplyStrategy body, operating on the writer's delta; reports the §4.3
  /// reuse accounting of this call (queries re-ranked / kept, subdomains
  /// touched) for the event log.
  Status ApplyStrategyOnDelta(Delta& delta, int target, const Vec& strategy,
                              uint64_t* reranked_out, uint64_t* reused_out,
                              uint64_t* affected_out) IQ_REQUIRES(mu_);

  /// Serializes writers (§4.3 maintenance + ApplyStrategy): held while a
  /// delta is built against the current epoch and swapped in as the next
  /// one. Readers never take it — they pin epochs via Snapshot() — so the
  /// outermost rank in the lock tree (LockRank::kEngine, util/lock_rank.h)
  /// now covers only the writer side; the pool, event-log and metrics locks
  /// still nest inside it.
  mutable Mutex mu_{LockRank::kEngine, "IqEngine::mu_"};
  /// The published epoch (DESIGN.md §12). Readers load-acquire and pin;
  /// the writer (under mu_) store-releases the next snapshot. Internally
  /// synchronized, hence not mu_-guarded.
  std::atomic<std::shared_ptr<const EpochSnapshot>>
      epoch_;  // iq-lint: allow(unguarded-member)
  /// Worker pool (DESIGN.md §8). Not guarded: set once at Create, then
  /// immutable; the pool object is internally synchronized. Workers only
  /// read pinned epochs and never take mu_.
  std::unique_ptr<ThreadPool> pool_;  // iq-lint: allow(unguarded-member)
  /// Live /metrics endpoint (DESIGN.md §9). Not guarded: set once at
  /// Create, then immutable; the exporter is internally synchronized and
  /// only ever *reads* the process-global registry.
  std::unique_ptr<MetricsExporter>
      exporter_;  // iq-lint: allow(unguarded-member)
  /// Dump-on-error target; set once at Create, then immutable.
  std::string event_dump_path_;  // iq-lint: allow(unguarded-member)
  /// Chunking for engine.solve_batch; set once at Create, then immutable.
  ChunkPolicy chunk_policy_ =  // iq-lint: allow(unguarded-member)
      ChunkPolicy::kDynamic;
  /// Round-robin ticket for the Debug-mode sampled-subdomain cross-check.
  uint64_t apply_ticket_ IQ_GUARDED_BY(mu_) = 0;
};

}  // namespace iq

#endif  // IQ_CORE_ENGINE_H_
