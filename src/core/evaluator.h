#ifndef IQ_CORE_EVALUATOR_H_
#define IQ_CORE_EVALUATOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/subdomain_index.h"
#include "topk/rta.h"
#include "util/annotations.h"

namespace iq {

/// Evaluates H(p_target + s): the number of queries the improved target
/// hits. The improved object is passed as its coefficient vector; the
/// target's original row is excluded from every competition (the improved
/// object replaces it, paper §3.1).
///
/// The three implementations mirror the paper's compared schemes:
/// Ese (the proposed Algorithm 2), Rta (reverse top-k baseline), and
/// BruteForce (index-free re-evaluation).
///
/// Concurrency: evaluators are externally synchronized — they own no lock.
/// They wrap *immutable* inputs: in the engine they are created, driven and
/// destroyed within one solve against a pinned epoch (IqEngine::Snapshot(),
/// DESIGN.md §12), whose index/view/queries cannot change underneath them;
/// standalone users provide the same stability with a single test thread or
/// their own lock. SupportsConcurrentEval() widens
/// that contract per subclass: when it returns true, HitsForCoeffs only
/// reads construction-time state and keeps its bookkeeping in the atomic
/// counters below, so the parallel candidate-evaluation path may share one
/// instance across pool workers. Subclass members that are mutated per
/// evaluation and therefore pin SupportsConcurrentEval() to false carry
/// IQ_GUARDED_BY_CALLER markers (documentation, not compiler-enforced).
class StrategyEvaluator {
 public:
  virtual ~StrategyEvaluator() = default;

  /// H for the improved target's coefficient vector.
  virtual int HitsForCoeffs(const Vec& c) = 0;

  /// H of the unimproved target.
  virtual int base_hits() const = 0;

  virtual const char* name() const = 0;

  /// True when HitsForCoeffs may be called from several threads at once
  /// (the implementation only reads shared state and keeps its accounting
  /// in the atomic counters below). The parallel candidate-evaluation path
  /// checks this and falls back to a serial loop otherwise.
  virtual bool SupportsConcurrentEval() const { return false; }

  /// Number of HitsForCoeffs calls so far (experiment bookkeeping).
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }

  /// Queries whose hit state was recomputed (scored against the improved
  /// coefficients) across all evaluations so far. For the scan paths this is
  /// every active query per call; the wedge path recomputes only the
  /// affected subspaces.
  size_t queries_rescored() const {
    return queries_rescored_.load(std::memory_order_relaxed);
  }
  /// Queries whose cached hit state was reused without rescoring. Invariant:
  /// queries_rescored + queries_reused advances by |active queries| per
  /// evaluation.
  size_t queries_reused() const {
    return queries_reused_.load(std::memory_order_relaxed);
  }

 protected:
  // Atomic so thread-safe subclasses (SupportsConcurrentEval() == true) can
  // be driven concurrently by ThreadPool::ParallelFor without racing the
  // bookkeeping; single-threaded evaluators pay one uncontended add.
  std::atomic<size_t> calls_{0};
  std::atomic<size_t> queries_rescored_{0};
  std::atomic<size_t> queries_reused_{0};
};

/// Efficient Strategy Evaluation (Algorithm 2). The subdomain index already
/// paid for ranking every query once; evaluation of a strategy then needs a
/// single dot product per query against the cached hit threshold t_q —
/// no top-k re-evaluation ever happens here. A geometric retrieval path
/// (affected-subspace wedges over the R-tree, pruned to signature-member
/// competitors) is exposed for thin strategies and validated against the
/// scan in tests.
class EseEvaluator : public StrategyEvaluator {
 public:
  EseEvaluator(const SubdomainIndex* index, int target);

  int HitsForCoeffs(const Vec& c) override;
  int base_hits() const override { return base_hits_; }
  const char* name() const override { return "Efficient-IQ"; }
  /// Pure reads over the index's cached thresholds; safe to share.
  bool SupportsConcurrentEval() const override { return true; }

  int target() const { return target_; }
  /// Cached per-query hit thresholds (NaN on inactive slots).
  const std::vector<double>& thresholds() const { return thresholds_; }
  /// Hit flags of the unimproved target.
  const std::vector<bool>& base_hit_flags() const { return base_hit_flags_; }

  /// Query ids whose result may change between coefficient vectors c_from
  /// and c_to: union of the affected subspaces (Eq. 2-5) of every signature-
  /// member competitor, retrieved through the R-tree with wedge pruning.
  std::vector<int> AffectedQueries(const Vec& c_from, const Vec& c_to) const;

  /// H computed the fully geometric way (Algorithm 2 literal): start from
  /// the base hit flags and re-test only AffectedQueries(base, c).
  int HitsViaWedges(const Vec& c);

 private:
  const SubdomainIndex* index_;
  int target_;
  int base_hits_ = 0;
  std::vector<double> thresholds_;
  std::vector<bool> base_hit_flags_;
  /// SoA batch path for the scan evaluation (DESIGN.md §13): the index's
  /// query kernel captured at construction (null when the index is
  /// mid-mutation → scalar fallback), plus thresholds_ re-indexed densely
  /// to the kernel's row order so CountHits runs one fused pass.
  std::shared_ptr<const ScoreKernel> query_kernel_;
  std::vector<double> dense_thresholds_;
};

/// Index-free baseline: recomputes the k-th competitor score per query with
/// a full scan on every evaluation.
class BruteForceEvaluator : public StrategyEvaluator {
 public:
  BruteForceEvaluator(const FunctionView* view, const QuerySet* queries,
                      int target);

  int HitsForCoeffs(const Vec& c) override;
  int base_hits() const override { return base_hits_; }
  const char* name() const override { return "BruteForce"; }
  /// Stateless full scans (KthBestScore is a pure function); safe to share.
  bool SupportsConcurrentEval() const override { return true; }

 private:
  const FunctionView* view_;
  const QuerySet* queries_;
  int target_;
  int base_hits_ = 0;
  std::vector<Vec> aug_w_;
  std::vector<bool> active_mask_;
};

/// RTA-IQ's evaluator: the reverse top-k Threshold Algorithm decides, per
/// evaluation, which queries the improved object hits (linear utilities
/// only, as in the paper).
class RtaStrategyEvaluator : public StrategyEvaluator {
 public:
  RtaStrategyEvaluator(const FunctionView* view, const QuerySet* queries,
                       int target);

  int HitsForCoeffs(const Vec& c) override;
  int base_hits() const override { return base_hits_; }
  const char* name() const override { return "RTA-IQ"; }

  size_t total_full_evaluations() const { return total_full_evaluations_; }

 private:
  const FunctionView* view_;
  const QuerySet* queries_;
  int target_;
  int base_hits_ = 0;
  std::vector<Vec> aug_w_dense_;   // active queries only
  std::vector<int> ks_dense_;
  std::vector<int> order_;
  std::vector<bool> active_mask_;
  /// Rta keeps per-call scratch state, and the counter below is a plain
  /// size_t bumped on every evaluation — both are why this evaluator reports
  /// SupportsConcurrentEval() == false and must stay caller-serialized.
  std::unique_ptr<Rta> rta_ IQ_GUARDED_BY_CALLER(owner);
  size_t total_full_evaluations_ IQ_GUARDED_BY_CALLER(owner) = 0;
};

}  // namespace iq

#endif  // IQ_CORE_EVALUATOR_H_
