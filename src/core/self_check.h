#ifndef IQ_CORE_SELF_CHECK_H_
#define IQ_CORE_SELF_CHECK_H_

#include <cstdint>

#include "core/subdomain_index.h"
#include "util/status.h"

namespace iq {

// Runtime cross-checks of the ESE fast path against naive re-evaluation
// (DESIGN.md "Correctness tooling"). The engine runs these after every
// ApplyStrategy in Debug builds; tests call them directly in any build.

/// Cross-checks ESE for `target`: every cached per-query hit decision
/// (threshold t_q from the cached subdomain ranking) must agree with a
/// naive full-scan re-evaluation of the k-th competitor score. Reports the
/// first disagreeing query. O(m·n).
Status CrossCheckEse(const SubdomainIndex& index, int target);

/// Re-ranks one sampled subdomain (the `ticket`-th occupied cell, round
/// robin) against a direct f_p(q) recomputation at its representative
/// query. Cheap enough to run after every update in Debug builds. Ok when
/// the index has no occupied subdomain.
Status CrossCheckSampledSubdomain(const SubdomainIndex& index,
                                  uint64_t ticket);

}  // namespace iq

#endif  // IQ_CORE_SELF_CHECK_H_
