#include "core/score_kernel.h"

#include <algorithm>
#include <cstddef>

#include "topk/topk.h"

// Explicit vectorization pragmas for the row-parallel inner loops. The
// loops are written so each iteration owns an independent accumulator
// (one dense row's partial sum), so asking the compiler to vectorize
// across iterations cannot reassociate any single row's sum — the
// bit-identity contract in score_kernel.h survives IQ_SIMD.
#if defined(IQ_SIMD)
#if defined(__clang__)
#define IQ_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define IQ_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define IQ_SIMD_LOOP
#endif
#else
#define IQ_SIMD_LOOP
#endif

namespace iq {

ScoreKernel ScoreKernel::Build(const std::vector<Vec>& rows,
                               const std::vector<bool>* active,
                               int num_slots) {
  ScoreKernel k;
  k.num_slots_ = num_slots;
  k.ids_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (active != nullptr && !(*active)[i]) continue;
    if (rows[i].size() < static_cast<size_t>(num_slots)) continue;
    k.ids_.push_back(static_cast<int>(i));
  }
  k.num_rows_ = static_cast<int>(k.ids_.size());
  k.data_.resize(static_cast<size_t>(num_slots) *
                 static_cast<size_t>(k.num_rows_));
  for (int s = 0; s < num_slots; ++s) {
    double* col = k.data_.data() + static_cast<size_t>(s) *
                                       static_cast<size_t>(k.num_rows_);
    for (int d = 0; d < k.num_rows_; ++d) {
      col[d] = rows[static_cast<size_t>(k.ids_[static_cast<size_t>(d)])]
                   [static_cast<size_t>(s)];
    }
  }
  return k;
}

void ScoreKernel::ScoreAll(const Vec& w, std::vector<double>* out) const {
  const int n = num_rows_;
  out->assign(static_cast<size_t>(n), 0.0);
  double* o = out->data();
  for (int s = 0; s < num_slots_; ++s) {
    const double* col =
        data_.data() + static_cast<size_t>(s) * static_cast<size_t>(n);
    const double ws = w[static_cast<size_t>(s)];
    IQ_SIMD_LOOP
    for (int d = 0; d < n; ++d) o[d] += col[d] * ws;
  }
}

std::vector<int> ScoreKernel::TopKappaSignature(
    const Vec& w, int kappa, std::vector<double>* scratch) const {
  ScoreAll(w, scratch);
  std::vector<ScoredObject> scored;
  scored.reserve(static_cast<size_t>(num_rows_));
  for (int d = 0; d < num_rows_; ++d) {
    scored.push_back({ids_[static_cast<size_t>(d)],
                      (*scratch)[static_cast<size_t>(d)]});
  }
  const size_t k = std::min<size_t>(static_cast<size_t>(kappa), scored.size());
  // Same comparator as TopKScan so the signature is bit-identical.
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(),
                    [](const ScoredObject& a, const ScoredObject& b) {
                      if (a.score != b.score) return a.score < b.score;
                      return a.id < b.id;
                    });
  std::vector<int> sig;
  sig.reserve(k);
  for (size_t i = 0; i < k; ++i) sig.push_back(scored[i].id);
  return sig;
}

int ScoreKernel::CountHits(const Vec& w,
                           const std::vector<double>& thresholds) const {
  constexpr int kBlock = 256;
  double acc[kBlock];
  const int n = num_rows_;
  const double* th = thresholds.data();
  int hits = 0;
  for (int base = 0; base < n; base += kBlock) {
    const int len = std::min(kBlock, n - base);
    for (int d = 0; d < len; ++d) acc[d] = 0.0;
    for (int s = 0; s < num_slots_; ++s) {
      const double* col = data_.data() +
                          static_cast<size_t>(s) * static_cast<size_t>(n) +
                          static_cast<size_t>(base);
      const double ws = w[static_cast<size_t>(s)];
      IQ_SIMD_LOOP
      for (int d = 0; d < len; ++d) acc[d] += col[d] * ws;
    }
    const double* bth = th + base;
    int block_hits = 0;
    IQ_SIMD_LOOP
    for (int d = 0; d < len; ++d) {
      block_hits += HitByThreshold(acc[d], bth[d]) ? 1 : 0;
    }
    hits += block_hits;
  }
  return hits;
}

}  // namespace iq
