#include "core/epoch.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace iq {
namespace {

/// Cached registry pointers; construction/destruction accounting only.
struct EpochMetrics {
  Gauge* epochs_live;      // snapshots currently alive (published + pinned)
  Counter* epochs_retired; // snapshots destroyed since process start

  static EpochMetrics& Get() {
    static EpochMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      EpochMetrics em;
      em.epochs_live = reg.GetGauge("iq.index.epochs_live");
      em.epochs_retired = reg.GetCounter("iq.index.epochs_retired");
      return em;
    }();
    return m;
  }
};

}  // namespace

EpochSnapshot::EpochSnapshot(uint64_t epoch_arg,
                             std::shared_ptr<const Dataset> dataset_arg,
                             std::shared_ptr<const QuerySet> queries_arg,
                             std::shared_ptr<const FunctionView> view_arg,
                             std::shared_ptr<const SubdomainIndex> index_arg)
    : epoch(epoch_arg),
      dataset(std::move(dataset_arg)),
      queries(std::move(queries_arg)),
      view(std::move(view_arg)),
      index(std::move(index_arg)) {
  EpochMetrics::Get().epochs_live->Add(1);
}

EpochSnapshot::~EpochSnapshot() {
  // Near-instant span, recorded for its *identity* rather than duration: it
  // marks which traced operation dropped the last pin on this epoch, with
  // the epoch id in the arg payload — the causal link between a slow solve
  // and the retirement churn it triggers.
  IQ_TRACE_SCOPE_ARG("EpochSnapshot::retire", epoch);
  EpochMetrics::Get().epochs_live->Add(-1);
  EpochMetrics::Get().epochs_retired->Increment();
}

}  // namespace iq
