#include "core/query.h"

#include <algorithm>

#include "util/string_util.h"

namespace iq {

Result<int> QuerySet::Add(TopKQuery q) {
  if (static_cast<int>(q.weights.size()) != num_weights_) {
    return Status::InvalidArgument(
        StrFormat("query has %zu weights, expected %d", q.weights.size(),
                  num_weights_));
  }
  if (q.k < 1) return Status::InvalidArgument("k must be >= 1");
  queries_.push_back(std::move(q));
  active_.push_back(true);
  ++num_active_;
  return static_cast<int>(queries_.size()) - 1;
}

Status QuerySet::Remove(int j) {
  if (j < 0 || j >= size()) {
    return Status::OutOfRange(StrFormat("query id %d out of range", j));
  }
  if (!active_[static_cast<size_t>(j)]) {
    return Status::FailedPrecondition(StrFormat("query %d already removed", j));
  }
  active_[static_cast<size_t>(j)] = false;
  --num_active_;
  return Status::Ok();
}

int QuerySet::max_k() const {
  int k = 0;
  for (int j = 0; j < size(); ++j) {
    if (is_active(j)) k = std::max(k, query(j).k);
  }
  return k;
}

}  // namespace iq
