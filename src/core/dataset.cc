#include "core/dataset.h"

#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace iq {

Result<Dataset> Dataset::FromRows(int dim, std::vector<Vec> rows) {
  if (dim <= 0) return Status::InvalidArgument("dimension must be positive");
  Dataset d(dim);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int>(rows[i].size()) != dim) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu attributes, expected %d", i,
                    rows[i].size(), dim));
    }
    for (double v : rows[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("row %zu contains a non-finite value", i));
      }
    }
    d.Add(std::move(rows[i]));
  }
  return d;
}

Result<Dataset> Dataset::FromCsv(const CsvTable& table,
                                 const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("no attribute columns given");
  }
  std::vector<int> col_idx;
  for (const std::string& name : columns) {
    int idx = table.ColumnIndex(name);
    if (idx < 0) return Status::NotFound("column not found: " + name);
    col_idx.push_back(idx);
  }
  std::vector<Vec> rows;
  rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    Vec r;
    r.reserve(columns.size());
    for (int idx : col_idx) {
      IQ_ASSIGN_OR_RETURN(double v, ParseDouble(row[static_cast<size_t>(idx)]));
      r.push_back(v);
    }
    rows.push_back(std::move(r));
  }
  return FromRows(static_cast<int>(columns.size()), std::move(rows));
}

int Dataset::Add(Vec attrs) {
  rows_.push_back(std::move(attrs));
  active_.push_back(true);
  ++num_active_;
  return static_cast<int>(rows_.size()) - 1;
}

Status Dataset::Remove(int id) {
  if (id < 0 || id >= size()) {
    return Status::OutOfRange(StrFormat("object id %d out of range", id));
  }
  if (!active_[static_cast<size_t>(id)]) {
    return Status::FailedPrecondition(
        StrFormat("object %d already removed", id));
  }
  active_[static_cast<size_t>(id)] = false;
  --num_active_;
  return Status::Ok();
}

Status Dataset::SetAttrs(int id, Vec attrs) {
  if (id < 0 || id >= size() || !active_[static_cast<size_t>(id)]) {
    return Status::OutOfRange(StrFormat("object id %d not active", id));
  }
  if (static_cast<int>(attrs.size()) != dim_) {
    return Status::InvalidArgument("attribute dimension mismatch");
  }
  rows_[static_cast<size_t>(id)] = std::move(attrs);
  return Status::Ok();
}

Status Dataset::SetAttrsIncludingInactive(int id, Vec attrs) {
  if (id < 0 || id >= size()) {
    return Status::OutOfRange(StrFormat("object id %d out of range", id));
  }
  if (static_cast<int>(attrs.size()) != dim_) {
    return Status::InvalidArgument("attribute dimension mismatch");
  }
  rows_[static_cast<size_t>(id)] = std::move(attrs);
  return Status::Ok();
}

Status Dataset::Reactivate(int id) {
  if (id < 0 || id >= size()) {
    return Status::OutOfRange(StrFormat("object id %d out of range", id));
  }
  if (active_[static_cast<size_t>(id)]) {
    return Status::FailedPrecondition(StrFormat("object %d is active", id));
  }
  active_[static_cast<size_t>(id)] = true;
  ++num_active_;
  return Status::Ok();
}

void Dataset::NormalizeToUnit() {
  for (int j = 0; j < dim_; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (int i = 0; i < size(); ++i) {
      if (!is_active(i)) continue;
      lo = std::min(lo, rows_[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      hi = std::max(hi, rows_[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
    double span = hi - lo;
    for (int i = 0; i < size(); ++i) {
      auto& v = rows_[static_cast<size_t>(i)][static_cast<size_t>(j)];
      v = span > 0 ? (v - lo) / span : 0.0;
    }
  }
}

CsvTable Dataset::ToCsv() const {
  CsvTable t;
  t.header.push_back("id");
  for (int j = 0; j < dim_; ++j) t.header.push_back(StrFormat("x%d", j + 1));
  for (int i = 0; i < size(); ++i) {
    if (!is_active(i)) continue;
    std::vector<std::string> row;
    row.push_back(StrFormat("%d", i));
    for (double v : rows_[static_cast<size_t>(i)]) {
      row.push_back(StrFormat("%.17g", v));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace iq
