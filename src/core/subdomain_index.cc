#include "core/subdomain_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topk/topk.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace iq {
namespace {

/// Cached pointers into the global registry; all increments are lock-free.
struct IndexMetrics {
  Counter* full_reranks;          // ComputeSignature calls (full TopKScan)
  Counter* signature_cache_hits;  // OnQueryAdded resolved by kNN shortcut
  Counter* cells_visited;         // subdomains scanned in OnObjectRemoved
  Counter* cells_skipped;         // subdomains pruned by the Bloom filter
  Counter* parallel_rank_batches; // ranking rounds fanned out over a pool
  Counter* cow_cells_cloned;      // cells copied-on-write for a new epoch
  Gauge* num_subdomains;
  Histogram* build_nanos;

  static IndexMetrics& Get() {
    static IndexMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      IndexMetrics im;
      im.full_reranks = reg.GetCounter("iq.index.full_reranks");
      im.signature_cache_hits =
          reg.GetCounter("iq.index.signature_cache_hits");
      im.cells_visited = reg.GetCounter("iq.index.cells_visited");
      im.cells_skipped = reg.GetCounter("iq.index.cells_skipped");
      im.parallel_rank_batches =
          reg.GetCounter("iq.index.parallel_rank_batches");
      im.cow_cells_cloned = reg.GetCounter("iq.index.cow_cells_cloned");
      im.num_subdomains = reg.GetGauge("iq.index.num_subdomains");
      im.build_nanos = reg.GetHistogram("iq.index.build_nanos");
      return im;
    }();
    return m;
  }
};

std::string SignatureKey(const std::vector<int>& sig) {
  std::string key(sig.size() * sizeof(int), '\0');
  if (!sig.empty()) std::memcpy(key.data(), sig.data(), key.size());
  return key;
}

std::vector<bool> ActiveMask(const Dataset& data) {
  std::vector<bool> mask(static_cast<size_t>(data.size()));
  for (int i = 0; i < data.size(); ++i) mask[static_cast<size_t>(i)] = data.is_active(i);
  return mask;
}

}  // namespace

Result<SubdomainIndex> SubdomainIndex::Build(const FunctionView* view,
                                             const QuerySet* queries,
                                             SubdomainIndexOptions options) {
  if (view == nullptr || queries == nullptr) {
    return Status::InvalidArgument("view/queries must not be null");
  }
  if (queries->num_weights() != view->form().num_weights()) {
    return Status::InvalidArgument(
        "query weight count does not match the utility form");
  }
  IQ_TRACE_SCOPE_ARG2("SubdomainIndex::Build", queries->size(),
                      options.epoch);
  WallTimer timer;
  SubdomainIndex index;
  index.view_ = view;
  index.queries_ = queries;
  int kappa = options.kappa;
  if (kappa <= 0) kappa = queries->max_k() + 1;
  kappa = std::max(kappa, 2);
  index.kappa_ = kappa;
  index.pool_ = options.pool;
  index.epoch_ = options.epoch;

  const int m = queries->size();
  index.aug_w_.resize(static_cast<size_t>(m));
  index.sd_of_.assign(static_cast<size_t>(m), -1);
  index.sig_member_count_.assign(
      static_cast<size_t>(view->dataset().size()), 0);
  index.boundary_bloom_ = std::make_unique<BloomFilter>(
      static_cast<size_t>(std::max(64, m)) * static_cast<size_t>(kappa), 0.01);

  // SoA object kernel first (DESIGN.md §13): phase 1's per-query ranking
  // scores against it, shared read-only across the pool workers.
  {
    std::vector<bool> mask = ActiveMask(view->dataset());
    index.object_kernel_ = std::make_shared<const ScoreKernel>(
        ScoreKernel::Build(view->rows(), &mask, view->form().num_slots()));
  }

  std::vector<Vec> points;
  std::vector<int> ids;
  points.reserve(static_cast<size_t>(queries->num_active()));
  ids.reserve(points.capacity());

  // Phase 1 (parallel): the expensive per-query ranking — augmented weights
  // plus a full TopKScan signature per active query. Every unit writes only
  // its own slots.
  std::vector<int> active;
  active.reserve(static_cast<size_t>(queries->num_active()));
  for (int q = 0; q < m; ++q) {
    if (queries->is_active(q)) active.push_back(q);
  }
  std::vector<std::vector<int>> sigs(active.size());
  if (options.pool != nullptr && active.size() > 1) {
    IndexMetrics::Get().parallel_rank_batches->Increment();
  }
  ParallelForOrSerial(
      options.pool, static_cast<int64_t>(active.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const int q = active[static_cast<size_t>(i)];
          index.aug_w_[static_cast<size_t>(q)] =
              view->form().AugmentWeights(queries->query(q).weights);
          sigs[static_cast<size_t>(i)] =
              index.ComputeSignature(index.aug_w_[static_cast<size_t>(q)]);
        }
      },
      "index.build_rank");

  // Phase 2 (serial): attach in ascending query id, so subdomain ids are
  // assigned in first-encounter order exactly as the serial build does.
  for (size_t i = 0; i < active.size(); ++i) {
    const int q = active[i];
    const Vec& w = index.aug_w_[static_cast<size_t>(q)];
    int sd = index.FindOrCreateSubdomain(std::move(sigs[i]));
    index.AttachQueryToSubdomain(q, sd);
    points.push_back(w);
    ids.push_back(q);
  }

  index.rtree_ = std::make_shared<RTree>(RTree::BulkLoad(
      view->form().num_slots(), points, ids, options.rtree_max_entries));

  // Query kernel second: the augmented weights only exist after phase 1.
  {
    std::vector<bool> qmask(static_cast<size_t>(m), false);
    for (int q : active) qmask[static_cast<size_t>(q)] = true;
    index.query_kernel_ = std::make_shared<const ScoreKernel>(
        ScoreKernel::Build(index.aug_w_, &qmask, view->form().num_slots()));
  }

  index.build_seconds_ = timer.ElapsedSeconds();
  IndexMetrics::Get().build_nanos->Record(timer.ElapsedNanos());
  IndexMetrics::Get().num_subdomains->Set(index.num_occupied_);
  EventLog::Global().Record(EventLog::IndexBuild(
      static_cast<int>(active.size()), index.num_occupied_,
      index.build_seconds_, index.epoch_));
  return index;
}

SubdomainIndex SubdomainIndex::CloneCow(const FunctionView* view,
                                        const QuerySet* queries,
                                        uint64_t epoch) const {
  SubdomainIndex copy;
  copy.view_ = view;
  copy.queries_ = queries;
  copy.kappa_ = kappa_;
  copy.pool_ = pool_;
  copy.epoch_ = epoch;
  copy.aug_w_ = aug_w_;
  copy.sd_of_ = sd_of_;
  // Cells and the R-tree are shared, not copied: MutableCell/MutableRTree
  // clone them lazily when (and only when) a maintenance hook touches them.
  copy.subdomains_ = subdomains_;
  copy.rtree_ = rtree_;
  copy.free_subdomains_ = free_subdomains_;
  copy.num_occupied_ = num_occupied_;
  copy.signature_to_sd_ = signature_to_sd_;
  copy.sig_member_count_ = sig_member_count_;
  // The Bloom filter is append-only and small; an eager copy keeps the
  // frozen parent's filter untouched when the clone adds boundary pairs.
  copy.boundary_bloom_ = std::make_unique<BloomFilter>(*boundary_bloom_);
  // The SoA kernels stay null on the clone: the maintenance hooks are about
  // to mutate the owners, so the scalar paths take over until the engine
  // calls RebuildScoreKernels() at publish time (once per epoch).
  copy.build_seconds_ = build_seconds_;
  copy.knn_shortcut_hits_ = knn_shortcut_hits_;
  copy.maintenance_rerank_events_ = maintenance_rerank_events_;
  copy.maintenance_affected_subdomains_ = maintenance_affected_subdomains_;
  return copy;
}

SubdomainIndex::Subdomain& SubdomainIndex::MutableCell(int sd) {
  std::shared_ptr<Subdomain>& cell = subdomains_[static_cast<size_t>(sd)];
  if (cell.use_count() > 1) {
    cell = std::make_shared<Subdomain>(*cell);
    IndexMetrics::Get().cow_cells_cloned->Increment();
  }
  return *cell;
}

RTree& SubdomainIndex::MutableRTree() {
  if (rtree_.use_count() > 1) {
    rtree_ = std::make_shared<RTree>(rtree_->Clone());
  }
  return *rtree_;
}

void SubdomainIndex::RebuildScoreKernels() {
  std::vector<bool> mask = ActiveMask(view_->dataset());
  object_kernel_ = std::make_shared<const ScoreKernel>(
      ScoreKernel::Build(view_->rows(), &mask, view_->form().num_slots()));
  std::vector<bool> qmask(aug_w_.size(), false);
  for (int q = 0; q < queries_->size(); ++q) {
    if (queries_->is_active(q)) qmask[static_cast<size_t>(q)] = true;
  }
  query_kernel_ = std::make_shared<const ScoreKernel>(
      ScoreKernel::Build(aug_w_, &qmask, view_->form().num_slots()));
}

std::vector<int> SubdomainIndex::ComputeSignature(const Vec& aug_w) const {
  IndexMetrics::Get().full_reranks->Increment();
  if (object_kernel_ != nullptr) {
    // SoA batch path: bit-identical to the TopKScan below (same comparator,
    // same per-row accumulation order; see score_kernel.h).
    std::vector<double> scratch;
    return object_kernel_->TopKappaSignature(aug_w, kappa_, &scratch);
  }
  std::vector<bool> mask = ActiveMask(view_->dataset());
  std::vector<ScoredObject> top =
      TopKScan(view_->rows(), &mask, aug_w, kappa_);
  std::vector<int> sig;
  sig.reserve(top.size());
  for (const ScoredObject& so : top) sig.push_back(so.id);
  return sig;
}

bool SubdomainIndex::SignatureMatches(const Vec& aug_w,
                                      const std::vector<int>& sig) const {
  const Dataset& data = view_->dataset();
  // A short signature is only valid when it holds every active object.
  if (static_cast<int>(sig.size()) < kappa_ &&
      static_cast<int>(sig.size()) != data.num_active()) {
    return false;
  }
  // One unsorted pass: (a) members must appear in strictly increasing
  // (score, id) order along the signature, (b) no non-member may rank
  // before the last member. This is the signature analogue of checking the
  // above/below relations against a subdomain's boundary intersections.
  std::vector<bool> is_member(static_cast<size_t>(data.size()), false);
  for (int obj : sig) {
    if (obj < 0 || obj >= data.size() || !data.is_active(obj)) return false;
    is_member[static_cast<size_t>(obj)] = true;
  }
  double prev_score = -std::numeric_limits<double>::infinity();
  int prev_id = -1;
  for (int obj : sig) {
    double s = view_->Score(obj, aug_w);  // iq-lint: allow(raw-scoring-loop)
    if (s < prev_score || (s == prev_score && obj < prev_id)) return false;
    prev_score = s;
    prev_id = obj;
  }
  for (int i = 0; i < data.size(); ++i) {
    if (!data.is_active(i) || is_member[static_cast<size_t>(i)]) continue;
    double s = view_->Score(i, aug_w);  // iq-lint: allow(raw-scoring-loop)
    if (s < prev_score || (s == prev_score && i < prev_id)) return false;
  }
  return true;
}

int SubdomainIndex::FindOrCreateSubdomain(std::vector<int> signature) {
  std::string key = SignatureKey(signature);
  auto it = signature_to_sd_.find(key);
  if (it != signature_to_sd_.end()) return it->second;
  int sd;
  if (!free_subdomains_.empty()) {
    sd = free_subdomains_.back();
    free_subdomains_.pop_back();
  } else {
    sd = static_cast<int>(subdomains_.size());
    subdomains_.push_back(std::make_shared<Subdomain>());
  }
  Subdomain& s = MutableCell(sd);
  s.signature = std::move(signature);
  s.query_ids.clear();
  s.occupied = true;
  ++num_occupied_;
  signature_to_sd_.emplace(std::move(key), sd);
  for (int obj : s.signature) {
    ++sig_member_count_[static_cast<size_t>(obj)];
    boundary_bloom_->Add(BloomFilter::KeyFromPair(obj, sd));
  }
  return sd;
}

void SubdomainIndex::AttachQueryToSubdomain(int q, int sd) {
  sd_of_[static_cast<size_t>(q)] = sd;
  MutableCell(sd).query_ids.push_back(q);
}

void SubdomainIndex::DetachQueryFromSubdomain(int q) {
  int sd = sd_of_[static_cast<size_t>(q)];
  if (sd < 0) return;
  auto& list = MutableCell(sd).query_ids;
  list.erase(std::remove(list.begin(), list.end(), q), list.end());
  sd_of_[static_cast<size_t>(q)] = -1;
  ReleaseSubdomainIfEmpty(sd);
}

void SubdomainIndex::ReleaseSubdomainIfEmpty(int sd) {
  if (!Cell(sd).occupied || !Cell(sd).query_ids.empty()) return;
  Subdomain& s = MutableCell(sd);
  signature_to_sd_.erase(SignatureKey(s.signature));
  for (int obj : s.signature) {
    --sig_member_count_[static_cast<size_t>(obj)];
  }
  s.signature.clear();
  s.occupied = false;
  --num_occupied_;
  free_subdomains_.push_back(sd);
}

std::vector<int> SubdomainIndex::SignatureMembers() const {
  std::vector<int> members;
  for (int i = 0; i < static_cast<int>(sig_member_count_.size()); ++i) {
    if (sig_member_count_[static_cast<size_t>(i)] > 0) members.push_back(i);
  }
  return members;
}

double SubdomainIndex::KthScoreExcluding(int q, int target) const {
  const int sd = sd_of_[static_cast<size_t>(q)];
  IQ_DCHECK(sd >= 0);
  const std::vector<int>& sig = Cell(sd).signature;
  const int k = queries_->query(q).k;
  const Vec& w = aug_w_[static_cast<size_t>(q)];
  int seen = 0;
  for (int obj : sig) {
    if (obj == target) continue;
    ++seen;
    // iq-lint: allow(raw-scoring-loop): O(kappa) prefix read
    if (seen == k) return view_->Score(obj, w);
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<double> SubdomainIndex::HitThresholds(int target) const {
  std::vector<double> t(static_cast<size_t>(queries_->size()),
                        std::numeric_limits<double>::quiet_NaN());
  for (int q = 0; q < queries_->size(); ++q) {
    if (!queries_->is_active(q)) continue;
    t[static_cast<size_t>(q)] = KthScoreExcluding(q, target);
  }
  return t;
}

bool SubdomainIndex::Hits(int target, int q) const {
  double score = view_->Score(target, aug_w_[static_cast<size_t>(q)]);
  return HitByThreshold(score, KthScoreExcluding(q, target));
}

int SubdomainIndex::HitCount(int target) const {
  int hits = 0;
  for (int q = 0; q < queries_->size(); ++q) {
    if (queries_->is_active(q) && Hits(target, q)) ++hits;
  }
  return hits;
}

std::vector<int> SubdomainIndex::HitSet(int target) const {
  std::vector<int> out;
  for (int q = 0; q < queries_->size(); ++q) {
    if (queries_->is_active(q) && Hits(target, q)) out.push_back(q);
  }
  return out;
}

Status SubdomainIndex::OnQueryAdded(int q) {
  if (q < 0 || q >= queries_->size() || !queries_->is_active(q)) {
    return Status::InvalidArgument("query id is not an active query");
  }
  if (static_cast<size_t>(q) < aug_w_.size() &&
      sd_of_.size() > static_cast<size_t>(q) &&
      sd_of_[static_cast<size_t>(q)] >= 0) {
    return Status::AlreadyExists("query already indexed");
  }
  // The owners changed: drop the SoA kernels so every scoring path below
  // (and until the next RebuildScoreKernels) is the scalar reference.
  object_kernel_.reset();
  query_kernel_.reset();
  aug_w_.resize(static_cast<size_t>(queries_->size()));
  sd_of_.resize(static_cast<size_t>(queries_->size()), -1);
  aug_w_[static_cast<size_t>(q)] =
      view_->form().AugmentWeights(queries_->query(q).weights);
  const Vec& w = aug_w_[static_cast<size_t>(q)];

  // kNN shortcut (§4.3): try the subdomains of nearby query points first.
  int sd = -1;
  for (const auto& [nbr, dist] : rtree_->KNearest(w, 4)) {
    (void)dist;
    int cand = sd_of_[static_cast<size_t>(nbr)];
    if (cand < 0) continue;
    if (SignatureMatches(w, Cell(cand).signature)) {
      sd = cand;
      ++knn_shortcut_hits_;
      IndexMetrics::Get().signature_cache_hits->Increment();
      break;
    }
  }
  if (sd < 0) {
    sd = FindOrCreateSubdomain(ComputeSignature(w));
  }
  AttachQueryToSubdomain(q, sd);
  MutableRTree().Insert(w, q);
  EventLog::Global().Record(
      EventLog::IndexMaintenance("OnQueryAdded", q, /*ok=*/true, epoch_));
  return Status::Ok();
}

Status SubdomainIndex::OnQueryRemoved(int q) {
  if (q < 0 || q >= static_cast<int>(sd_of_.size()) ||
      sd_of_[static_cast<size_t>(q)] < 0) {
    return Status::NotFound("query is not indexed");
  }
  object_kernel_.reset();
  query_kernel_.reset();
  MutableRTree().Remove(aug_w_[static_cast<size_t>(q)], q);
  DetachQueryFromSubdomain(q);
  EventLog::Global().Record(
      EventLog::IndexMaintenance("OnQueryRemoved", q, /*ok=*/true, epoch_));
  return Status::Ok();
}

Status SubdomainIndex::OnObjectAdded(int id) {
  IQ_TRACE_SCOPE_ARG2("SubdomainIndex::OnObjectAdded", id, epoch_);
  if (id < 0 || id >= view_->dataset().size() ||
      !view_->dataset().is_active(id)) {
    return Status::InvalidArgument("object id is not an active object");
  }
  object_kernel_.reset();
  query_kernel_.reset();
  sig_member_count_.resize(static_cast<size_t>(view_->dataset().size()), 0);
  const Vec& c = view_->coeffs(id);
  std::vector<int> touched_sds;

  // A new object can only change a query's signature when it enters the
  // top-κ prefix; test against the current κ-th member first (one dot).
  for (int q = 0; q < queries_->size(); ++q) {
    if (!queries_->is_active(q)) continue;
    int sd = sd_of_[static_cast<size_t>(q)];
    const Vec& w = aug_w_[static_cast<size_t>(q)];
    const std::vector<int>& sig = Cell(sd).signature;
    double score_new = Dot(c, w);  // iq-lint: allow(raw-scoring-loop)
    bool enters;
    if (static_cast<int>(sig.size()) < kappa_) {
      enters = true;  // prefix not full: the new object always joins it
    } else {
      int last = sig.back();
      // iq-lint: allow(raw-scoring-loop): O(kappa) prefix repair
      double last_score = view_->Score(last, w);
      enters = score_new < last_score ||
               (score_new == last_score && id < last);
    }
    if (!enters) continue;
    // Rebuild the prefix by inserting into the ordered member list.
    std::vector<std::pair<double, int>> ranked;
    ranked.reserve(sig.size() + 1);
    // iq-lint: allow(raw-scoring-loop): O(kappa) prefix repair
    for (int obj : sig) ranked.emplace_back(view_->Score(obj, w), obj);
    ranked.emplace_back(score_new, id);
    std::sort(ranked.begin(), ranked.end());
    if (static_cast<int>(ranked.size()) > kappa_) ranked.pop_back();
    std::vector<int> new_sig;
    new_sig.reserve(ranked.size());
    for (const auto& [s, obj] : ranked) new_sig.push_back(obj);
    int old_sd = sd_of_[static_cast<size_t>(q)];
    if (std::find(touched_sds.begin(), touched_sds.end(), old_sd) ==
        touched_sds.end()) {
      touched_sds.push_back(old_sd);
    }
    DetachQueryFromSubdomain(q);
    AttachQueryToSubdomain(q, FindOrCreateSubdomain(std::move(new_sig)));
    ++maintenance_rerank_events_;
  }
  maintenance_affected_subdomains_ += touched_sds.size();
  IndexMetrics::Get().num_subdomains->Set(num_occupied_);
  EventLog::Global().Record(
      EventLog::IndexMaintenance("OnObjectAdded", id, /*ok=*/true, epoch_));
  return Status::Ok();
}

Status SubdomainIndex::OnObjectRemoved(int id) {
  IQ_TRACE_SCOPE_ARG2("SubdomainIndex::OnObjectRemoved", id, epoch_);
  if (id < 0 || id >= static_cast<int>(sig_member_count_.size())) {
    return Status::OutOfRange("object id out of range");
  }
  object_kernel_.reset();
  query_kernel_.reset();
  // Collect queries whose signature contains the object. The Bloom filter
  // over (object, subdomain) membership prunes subdomains that certainly do
  // not use the object as a boundary (paper §4.3).
  std::vector<int> affected;
  uint64_t visited = 0, skipped = 0, affected_cells = 0;
  for (int sd = 0; sd < static_cast<int>(subdomains_.size()); ++sd) {
    const Subdomain& s = Cell(sd);
    if (!s.occupied) continue;
    if (!boundary_bloom_->MayContain(BloomFilter::KeyFromPair(id, sd))) {
      ++skipped;
      continue;
    }
    ++visited;
    if (std::find(s.signature.begin(), s.signature.end(), id) ==
        s.signature.end()) {
      continue;  // bloom false positive
    }
    ++affected_cells;
    affected.insert(affected.end(), s.query_ids.begin(), s.query_ids.end());
  }
  IndexMetrics::Get().cells_visited->Increment(visited);
  IndexMetrics::Get().cells_skipped->Increment(skipped);
  for (int q : affected) {
    DetachQueryFromSubdomain(q);
  }
  // Re-rank the affected queries (the §4.3 hot loop) in parallel; cell
  // creation stays serial in `affected` order so ids match the serial path.
  std::vector<std::vector<int>> sigs(affected.size());
  if (pool_ != nullptr && affected.size() > 1) {
    IndexMetrics::Get().parallel_rank_batches->Increment();
  }
  ParallelForOrSerial(pool_, static_cast<int64_t>(affected.size()),
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          sigs[static_cast<size_t>(i)] = ComputeSignature(
                              aug_w_[static_cast<size_t>(
                                  affected[static_cast<size_t>(i)])]);
                        }
                      },
                      "index.maintenance_rerank");
  for (size_t i = 0; i < affected.size(); ++i) {
    AttachQueryToSubdomain(affected[i],
                           FindOrCreateSubdomain(std::move(sigs[i])));
  }
  maintenance_rerank_events_ += affected.size();
  maintenance_affected_subdomains_ += affected_cells;
  IndexMetrics::Get().num_subdomains->Set(num_occupied_);
  EventLog::Global().Record(
      EventLog::IndexMaintenance("OnObjectRemoved", id, /*ok=*/true, epoch_));
  return Status::Ok();
}

Status SubdomainIndex::OnObjectChanged(int id) {
  // In-place attribute change = remove + add, on the signature level.
  IQ_RETURN_IF_ERROR(OnObjectRemoved(id));
  return OnObjectAdded(id);
}

namespace {

std::string IntListString(const std::vector<int>& v) {
  std::string s = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(v[static_cast<size_t>(i)]);
  }
  s += "]";
  return s;
}

}  // namespace

Status SubdomainIndex::CheckInvariants() const {
  const int m = queries_->size();
  if (static_cast<int>(sd_of_.size()) != m ||
      static_cast<int>(aug_w_.size()) != m) {
    return Status::Internal("per-query tables are not sized to the QuerySet");
  }

  // 1. Query → subdomain assignment, checked in both directions.
  for (int q = 0; q < m; ++q) {
    int sd = sd_of_[static_cast<size_t>(q)];
    if (!queries_->is_active(q)) {
      if (sd >= 0) {
        return Status::Internal("inactive query " + std::to_string(q) +
                                " is still assigned to subdomain " +
                                std::to_string(sd));
      }
      continue;
    }
    if (sd < 0 || sd >= static_cast<int>(subdomains_.size()) ||
        !Cell(sd).occupied) {
      return Status::Internal("active query " + std::to_string(q) +
                              " is not assigned to an occupied subdomain");
    }
    const std::vector<int>& members = Cell(sd).query_ids;
    if (std::find(members.begin(), members.end(), q) == members.end()) {
      return Status::Internal("query " + std::to_string(q) +
                              " claims subdomain " + std::to_string(sd) +
                              " but is missing from its member list");
    }
  }

  // 2. Occupancy and membership counters re-count.
  int occupied = 0;
  std::vector<int> member_recount(sig_member_count_.size(), 0);
  for (int sd = 0; sd < static_cast<int>(subdomains_.size()); ++sd) {
    const Subdomain& s = Cell(sd);
    if (!s.occupied) continue;
    ++occupied;
    if (s.query_ids.empty()) {
      return Status::Internal("occupied subdomain " + std::to_string(sd) +
                              " has no member queries (should have been "
                              "released)");
    }
    for (int q : s.query_ids) {
      if (q < 0 || q >= m || sd_of_[static_cast<size_t>(q)] != sd) {
        return Status::Internal("subdomain " + std::to_string(sd) +
                                " lists query " + std::to_string(q) +
                                " that is not assigned back to it");
      }
    }
    for (int obj : s.signature) {
      if (obj < 0 || obj >= static_cast<int>(member_recount.size())) {
        return Status::Internal("subdomain " + std::to_string(sd) +
                                " signature holds out-of-range object " +
                                std::to_string(obj));
      }
      ++member_recount[static_cast<size_t>(obj)];
    }
  }
  if (occupied != num_occupied_) {
    return Status::Internal(
        "occupied-subdomain counter disagrees with a re-count: counter " +
        std::to_string(num_occupied_) + ", re-count " +
        std::to_string(occupied));
  }
  if (static_cast<int>(signature_to_sd_.size()) != num_occupied_) {
    return Status::Internal("signature hash table holds " +
                            std::to_string(signature_to_sd_.size()) +
                            " entries for " + std::to_string(num_occupied_) +
                            " occupied subdomains");
  }
  for (size_t obj = 0; obj < member_recount.size(); ++obj) {
    if (member_recount[obj] != sig_member_count_[obj]) {
      return Status::Internal(
          "signature-membership counter for object " + std::to_string(obj) +
          " disagrees with a re-count: counter " +
          std::to_string(sig_member_count_[obj]) + ", re-count " +
          std::to_string(member_recount[obj]));
    }
  }

  // 3. Cached total orders agree with direct f_p(q) re-ranking: a full
  // recompute at each cell's representative query, plus the cheaper
  // signature-match scan at every other member query.
  for (int sd = 0; sd < static_cast<int>(subdomains_.size()); ++sd) {
    const Subdomain& s = Cell(sd);
    if (!s.occupied) continue;
    int rep = s.query_ids.front();
    std::vector<int> fresh = ComputeSignature(aug_w_[static_cast<size_t>(rep)]);
    if (fresh != s.signature) {
      size_t pos = 0;
      while (pos < fresh.size() && pos < s.signature.size() &&
             fresh[pos] == s.signature[pos]) {
        ++pos;
      }
      return Status::Internal(
          "subdomain " + std::to_string(sd) +
          ": cached signature disagrees with direct re-ranking at "
          "representative query " +
          std::to_string(rep) + " (first divergence at position " +
          std::to_string(pos) + "): cached " + IntListString(s.signature) +
          ", re-ranked " + IntListString(fresh));
    }
    for (int q : s.query_ids) {
      if (q == rep) continue;
      if (!SignatureMatches(aug_w_[static_cast<size_t>(q)], s.signature)) {
        return Status::Internal("query " + std::to_string(q) +
                                " no longer ranks according to the cached "
                                "signature of its subdomain " +
                                std::to_string(sd));
      }
    }
  }

  // 4. The R-tree mirrors the active queries exactly.
  if (rtree_ == nullptr) return Status::Internal("R-tree is missing");
  IQ_RETURN_IF_ERROR(rtree_->CheckInvariants());
  if (static_cast<int>(rtree_->size()) != queries_->num_active()) {
    return Status::Internal("R-tree holds " + std::to_string(rtree_->size()) +
                            " query points for " +
                            std::to_string(queries_->num_active()) +
                            " active queries");
  }
  return Status::Ok();
}

void SubdomainIndex::TestOnlyCorruptSignature(int sd) {
  Subdomain& s = MutableCell(sd);
  IQ_CHECK(s.occupied && s.signature.size() >= 2)
      << "corruption hook needs an occupied subdomain with >= 2 members";
  std::swap(s.signature[0], s.signature[1]);
}

size_t SubdomainIndex::MemoryBytes() const {
  size_t bytes = sizeof(SubdomainIndex);
  for (const Vec& w : aug_w_) bytes += w.capacity() * sizeof(double);
  bytes += sd_of_.capacity() * sizeof(int);
  for (const auto& s : subdomains_) {
    bytes += sizeof(Subdomain) + sizeof(std::shared_ptr<Subdomain>);
    bytes += s->signature.capacity() * sizeof(int);
    bytes += s->query_ids.capacity() * sizeof(int);
  }
  bytes += sig_member_count_.capacity() * sizeof(int);
  if (rtree_ != nullptr) bytes += rtree_->MemoryBytes();
  if (boundary_bloom_ != nullptr) bytes += boundary_bloom_->MemoryBytes();
  if (object_kernel_ != nullptr) bytes += object_kernel_->MemoryBytes();
  if (query_kernel_ != nullptr) bytes += query_kernel_->MemoryBytes();
  return bytes;
}

}  // namespace iq
