#include "core/self_check.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "topk/topk.h"

namespace iq {
namespace {

std::vector<bool> ActiveMask(const Dataset& data) {
  std::vector<bool> mask(static_cast<size_t>(data.size()));
  for (int i = 0; i < data.size(); ++i) {
    mask[static_cast<size_t>(i)] = data.is_active(i);
  }
  return mask;
}

}  // namespace

Status CrossCheckEse(const SubdomainIndex& index, int target) {
  const FunctionView& view = index.view();
  const QuerySet& queries = index.queries();
  std::vector<bool> mask = ActiveMask(view.dataset());
  for (int q = 0; q < queries.size(); ++q) {
    if (!queries.is_active(q)) continue;
    const Vec& w = index.aug_weights(q);
    double cached_t = index.KthScoreExcluding(q, target);
    double naive_t =
        KthBestScore(view.rows(), &mask, w, queries.query(q).k, target);
    // Both thresholds pick the k-th smallest of the same dot products, so
    // they must agree bit-for-bit, not just approximately.
    if (cached_t != naive_t && !(std::isinf(cached_t) && std::isinf(naive_t))) {
      return Status::Internal(
          "ESE cross-check failed for target " + std::to_string(target) +
          " at query " + std::to_string(q) + ": cached hit threshold " +
          std::to_string(cached_t) + " vs naive re-evaluation " +
          std::to_string(naive_t));
    }
    double score = view.Score(target, w);  // iq-lint: allow(raw-scoring-loop)
    bool cached_hit = index.Hits(target, q);
    bool naive_hit = HitByThreshold(score, naive_t);
    if (cached_hit != naive_hit) {
      return Status::Internal(
          "ESE cross-check failed for target " + std::to_string(target) +
          " at query " + std::to_string(q) + ": cached hit decision " +
          (cached_hit ? "hit" : "miss") + " vs naive " +
          (naive_hit ? "hit" : "miss"));
    }
  }
  return Status::Ok();
}

Status CrossCheckSampledSubdomain(const SubdomainIndex& index,
                                  uint64_t ticket) {
  const QuerySet& queries = index.queries();
  std::vector<int> occupied;
  for (int q = 0; q < queries.size(); ++q) {
    if (!queries.is_active(q)) continue;
    occupied.push_back(index.subdomain_of(q));
  }
  std::sort(occupied.begin(), occupied.end());
  occupied.erase(std::unique(occupied.begin(), occupied.end()),
                 occupied.end());
  if (occupied.empty()) return Status::Ok();

  int sd = occupied[static_cast<size_t>(ticket % occupied.size())];
  const std::vector<int>& cached = index.signature(sd);
  int rep = index.subdomain_queries(sd).front();

  const FunctionView& view = index.view();
  std::vector<bool> mask = ActiveMask(view.dataset());
  std::vector<ScoredObject> top =
      TopKScan(view.rows(), &mask, index.aug_weights(rep), index.kappa());
  std::vector<int> fresh;
  fresh.reserve(top.size());
  for (const ScoredObject& so : top) fresh.push_back(so.id);

  if (fresh != cached) {
    return Status::Internal(
        "sampled subdomain " + std::to_string(sd) +
        ": cached total order disagrees with a direct re-ranking at its "
        "representative query " +
        std::to_string(rep));
  }
  return Status::Ok();
}

}  // namespace iq
