#include "core/function_view.h"

#include "util/check.h"

namespace iq {
namespace {

bool FormIsIdentity(const LinearForm& form, int dim) {
  if (form.has_bias() || form.num_slots() != dim) return false;
  for (int j = 0; j < dim; ++j) {
    const AttrPoly& poly = form.slot(j);
    if (poly.size() != 1) return false;
    const Monomial& m = poly[0];
    if (m.coef != 1.0 || m.factors.size() != 1 || m.factors[0].first != j ||
        m.factors[0].second != 1) {
      return false;
    }
  }
  return true;
}

}  // namespace

FunctionView::FunctionView(const Dataset* dataset, LinearForm form)
    : dataset_(dataset),
      form_(std::move(form)),
      is_identity_(FormIsIdentity(form_, dataset->dim())) {
  coeffs_.reserve(static_cast<size_t>(dataset_->size()));
  for (int i = 0; i < dataset_->size(); ++i) {
    coeffs_.push_back(form_.Coefficients(dataset_->attrs(i)));
  }
}

void FunctionView::RefreshRow(int id) {
  IQ_CHECK(id >= 0 && id < static_cast<int>(coeffs_.size()));
  coeffs_[static_cast<size_t>(id)] = form_.Coefficients(dataset_->attrs(id));
}

void FunctionView::AppendRow(int id) {
  IQ_CHECK(id == static_cast<int>(coeffs_.size()));
  coeffs_.push_back(form_.Coefficients(dataset_->attrs(id)));
}

size_t FunctionView::MemoryBytes() const {
  size_t bytes = sizeof(FunctionView);
  for (const Vec& c : coeffs_) bytes += c.capacity() * sizeof(double);
  bytes += coeffs_.capacity() * sizeof(Vec);
  return bytes;
}

}  // namespace iq
