#ifndef IQ_CORE_SUBDOMAIN_BSP_H_
#define IQ_CORE_SUBDOMAIN_BSP_H_

#include <vector>

#include "core/function_view.h"
#include "core/subdomain_index.h"
#include "geom/vec.h"

namespace iq {

/// Literal Algorithm 1 (FindSubdomains): partitions the query points by
/// binary space partitioning against every pairwise intersection hyperplane
/// of the object-functions, keeping only occupied subdomains.
///
/// This is exponential in principle and enumerates O(n^2) hyperplanes, so it
/// is only usable at small scale; it exists as the ground truth that the
/// scalable signature grouping of SubdomainIndex is property-tested against
/// (two queries share a BSP cell iff they induce the same total order of all
/// object-functions; with κ = n the signature partition is identical).
///
/// Returns groups of indices into `query_points`, each sorted ascending,
/// groups ordered by their smallest member.
std::vector<std::vector<int>> FindSubdomainsBsp(
    const FunctionView& view, const std::vector<Vec>& query_points);

/// The occupied-subdomain partition of an index, in the same normalized
/// format (groups of query ids, sorted; groups ordered by smallest member).
std::vector<std::vector<int>> PartitionBySignature(const SubdomainIndex& index);

}  // namespace iq

#endif  // IQ_CORE_SUBDOMAIN_BSP_H_
