#include "core/explain.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "topk/topk.h"
#include "util/string_util.h"

namespace iq {
namespace {

/// Cached pointers into the global registry (see EngineMetrics).
struct ExplainMetrics {
  Counter* reports;
  Histogram* margin;  // |QueryEffect::margin| in integer nano-units

  static ExplainMetrics& Get() {
    static ExplainMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      ExplainMetrics em;
      em.reports = reg.GetCounter("iq.explain.reports");
      em.margin = reg.GetHistogram("iq.explain.margin");
      return em;
    }();
    return m;
  }
};

/// Histograms take integer samples; margins are small doubles, so record
/// them in nano-units (1.0 -> 1e9) to keep the base-2 buckets informative.
void RecordMargin(double margin) {
  double nanos = std::abs(margin) * 1e9;
  if (!std::isfinite(nanos)) return;
  ExplainMetrics::Get().margin->Record(static_cast<uint64_t>(nanos));
}

}  // namespace

std::string StrategyReport::ToString(int max_rows) const {
  std::string out = StrFormat(
      "strategy for object #%d: hits %d -> %d (%+d)\n", target, hits_before,
      hits_after, hits_after - hits_before);
  auto render = [&out, max_rows](const char* title,
                                 const std::vector<QueryEffect>& effects) {
    if (effects.empty()) return;
    out += StrFormat("%s (%zu):\n", title, effects.size());
    int shown = 0;
    for (const QueryEffect& e : effects) {
      if (shown++ >= max_rows) {
        out += StrFormat("  ... %zu more\n", effects.size() - max_rows);
        break;
      }
      out += StrFormat(
          "  query %-5d score %8.4f -> %8.4f  threshold %8.4f  margin %.4f\n",
          e.query, e.score_before, e.score_after, e.threshold, e.margin);
    }
  };
  render("gained", gained);
  render("lost", lost);
  return out;
}

Result<StrategyReport> ExplainStrategy(const SubdomainIndex& index,
                                       int target, const Vec& strategy) {
  const FunctionView& view = index.view();
  const Dataset& data = view.dataset();
  if (target < 0 || target >= data.size() || !data.is_active(target)) {
    return Status::InvalidArgument("target is not an active object");
  }
  if (static_cast<int>(strategy.size()) != data.dim()) {
    return Status::InvalidArgument("strategy dimension mismatch");
  }

  StrategyReport report;
  report.target = target;
  report.strategy = strategy;

  const Vec& c_before = view.coeffs(target);
  Vec c_after = view.CoefficientsFor(Add(data.attrs(target), strategy));

  const QuerySet& queries = index.queries();
  for (int q = 0; q < queries.size(); ++q) {
    if (!queries.is_active(q)) continue;
    const Vec& w = index.aug_weights(q);
    double t = index.KthScoreExcluding(q, target);
    QueryEffect e;
    e.query = q;
    e.threshold = t;
    e.score_before = Dot(c_before, w);  // iq-lint: allow(raw-scoring-loop)
    e.score_after = Dot(c_after, w);  // iq-lint: allow(raw-scoring-loop)
    bool before = HitByThreshold(e.score_before, t);
    bool after = HitByThreshold(e.score_after, t);
    if (before) ++report.hits_before;
    if (after) ++report.hits_after;
    if (before == after) continue;
    if (after) {
      e.direction = 1;
      e.margin = t - e.score_after;
      report.gained.push_back(e);
    } else {
      e.direction = -1;
      e.margin = e.score_after - t;
      report.lost.push_back(e);
    }
    RecordMargin(e.margin);
  }
  ExplainMetrics::Get().reports->Increment();
  auto by_margin = [](const QueryEffect& a, const QueryEffect& b) {
    return a.margin > b.margin;
  };
  std::sort(report.gained.begin(), report.gained.end(), by_margin);
  std::sort(report.lost.begin(), report.lost.end(), by_margin);
  return report;
}

}  // namespace iq
