#ifndef IQ_CORE_EPOCH_H_
#define IQ_CORE_EPOCH_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "core/subdomain_index.h"

namespace iq {

/// One published, immutable version of the engine's logical state
/// (DESIGN.md §12): the dataset, the query workload, the
/// objects-as-functions view and the subdomain index, all frozen as of one
/// successful mutation. The four parts are internally consistent — the view
/// points at *this* snapshot's dataset, the index at this snapshot's view
/// and queries — so any read computed against a snapshot is equivalent to a
/// serial read of the engine at the moment epoch `epoch` was published.
///
/// Lifecycle: the writer (serialized on IqEngine::mu_) builds the next
/// snapshot as a copy-on-write delta against the current one, publishes it
/// with an atomic pointer swap, and never touches it again. Readers pin a
/// snapshot through EpochHandle (a shared_ptr ref, no hazard pointers) and
/// read without any lock. A superseded epoch is retired — destroyed, and
/// counted in iq.index.epochs_retired — when the engine's publish pointer
/// and the last pinned reader have both dropped it. Shared subdomain cells
/// inside the index outlive the snapshot if a newer epoch still shares them.
struct EpochSnapshot {
  EpochSnapshot(uint64_t epoch_arg, std::shared_ptr<const Dataset> dataset_arg,
                std::shared_ptr<const QuerySet> queries_arg,
                std::shared_ptr<const FunctionView> view_arg,
                std::shared_ptr<const SubdomainIndex> index_arg);
  /// Retirement: updates iq.index.epochs_live / iq.index.epochs_retired.
  ~EpochSnapshot();

  EpochSnapshot(const EpochSnapshot&) = delete;
  EpochSnapshot& operator=(const EpochSnapshot&) = delete;

  const uint64_t epoch;
  const std::shared_ptr<const Dataset> dataset;
  const std::shared_ptr<const QuerySet> queries;
  const std::shared_ptr<const FunctionView> view;
  const std::shared_ptr<const SubdomainIndex> index;
};

/// A reader's pin on one epoch (DESIGN.md §12). Holding a handle keeps the
/// snapshot — and therefore every answer computed from it — stable while
/// writers publish newer epochs concurrently. Copyable (both copies pin the
/// same epoch); dropping the last handle to a superseded epoch retires it.
/// Obtain one from IqEngine::Snapshot(); a default-constructed handle is
/// empty (valid() == false) and must not be dereferenced.
class EpochHandle {
 public:
  EpochHandle() = default;
  explicit EpochHandle(std::shared_ptr<const EpochSnapshot> snap)
      : snap_(std::move(snap)) {}

  bool valid() const { return snap_ != nullptr; }
  uint64_t epoch() const { return snap_->epoch; }

  const Dataset& dataset() const { return *snap_->dataset; }
  const QuerySet& queries() const { return *snap_->queries; }
  const FunctionView& view() const { return *snap_->view; }
  const SubdomainIndex& index() const { return *snap_->index; }

  /// Raw pointers for APIs that take snapshot pointers (SolveOne and the
  /// evaluators); only valid while this handle (or another pin on the same
  /// epoch) is alive.
  const SubdomainIndex* index_ptr() const { return snap_->index.get(); }
  const FunctionView* view_ptr() const { return snap_->view.get(); }
  const QuerySet* queries_ptr() const { return snap_->queries.get(); }

  /// Drops the pin early (before the handle goes out of scope).
  void reset() { snap_.reset(); }

 private:
  std::shared_ptr<const EpochSnapshot> snap_;
};

}  // namespace iq

#endif  // IQ_CORE_EPOCH_H_
