#ifndef IQ_OPT_DYKSTRA_H_
#define IQ_OPT_DYKSTRA_H_

#include <vector>

#include "geom/vec.h"
#include "opt/bounds.h"
#include "util/status.h"

namespace iq {

/// Dykstra's alternating-projection algorithm: the Euclidean projection of
/// `target` onto the polyhedron { s : A[i].s <= b[i] for all i } ∩ box.
///
/// Used by the exhaustive IQ search, where the optimal L2-cost strategy for
/// a chosen query subset is exactly the projection of the origin onto the
/// intersection of that subset's hit halfspaces.
///
/// Returns FailedPrecondition when the iterate does not reach feasibility
/// (empty intersection or insufficient iterations).
Result<Vec> DykstraProject(const std::vector<Vec>& A, const Vec& b,
                           const AdjustBox& box, const Vec& target,
                           int max_iters = 4000, double tol = 1e-9);

}  // namespace iq

#endif  // IQ_OPT_DYKSTRA_H_
