#ifndef IQ_OPT_BOUNDS_H_
#define IQ_OPT_BOUNDS_H_

#include <vector>

#include "geom/vec.h"

namespace iq {

/// Validity constraints on an improvement strategy (paper §4.2.1: "all
/// attribute values of the improved object must not exceed the allowed
/// range", and users may freeze attributes entirely, s_i = 0).
///
/// Bounds are expressed on the strategy vector s: lower[j] <= s_j <=
/// upper[j]. A frozen attribute has lower = upper = 0.
class AdjustBox {
 public:
  /// No restriction in any dimension.
  static AdjustBox Unbounded(int dim);

  /// Freezes the attributes where adjustable[j] is false.
  static AdjustBox WithAdjustable(int dim, const std::vector<bool>& adjustable);

  /// Bounds derived from allowed *value* ranges for the improved object:
  /// s_j in [value_lo[j] - p[j], value_hi[j] - p[j]].
  static AdjustBox FromValueRange(const Vec& p, const Vec& value_lo,
                                  const Vec& value_hi);

  int dim() const { return static_cast<int>(lower_.size()); }
  const Vec& lower() const { return lower_; }
  const Vec& upper() const { return upper_; }

  /// Sets s_j's allowed interval. Pre: lo <= hi.
  void SetRange(int j, double lo, double hi);
  /// Forces s_j = 0.
  void Freeze(int j);
  bool IsFrozen(int j) const;

  bool Contains(const Vec& s, double tol = 1e-9) const;
  /// Component-wise clamp of s into the box.
  Vec Clamp(const Vec& s) const;

 private:
  Vec lower_;
  Vec upper_;
};

}  // namespace iq

#endif  // IQ_OPT_BOUNDS_H_
