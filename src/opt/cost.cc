#include "opt/cost.h"

#include <cmath>

#include "util/check.h"

namespace iq {
namespace {

double Sign(double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }

Vec NumericGradient(const std::function<double(const Vec&)>& fn,
                    const Vec& s) {
  const double h = 1e-6;
  Vec grad(s.size());
  Vec probe = s;
  for (size_t i = 0; i < s.size(); ++i) {
    probe[i] = s[i] + h;
    double up = fn(probe);
    probe[i] = s[i] - h;
    double down = fn(probe);
    probe[i] = s[i];
    grad[i] = (up - down) / (2 * h);
  }
  return grad;
}

}  // namespace

CostFunction CostFunction::L1() { return CostFunction(Kind::kL1, {}, "L1"); }

CostFunction CostFunction::L2() { return CostFunction(Kind::kL2, {}, "L2"); }

CostFunction CostFunction::WeightedL1(Vec unit_costs) {
  return CostFunction(Kind::kWeightedL1, std::move(unit_costs), "weightedL1");
}

CostFunction CostFunction::WeightedL2(Vec unit_costs) {
  return CostFunction(Kind::kWeightedL2, std::move(unit_costs), "weightedL2");
}

CostFunction CostFunction::Quadratic(Vec unit_costs) {
  return CostFunction(Kind::kQuadratic, std::move(unit_costs), "quadratic");
}

CostFunction CostFunction::Custom(std::function<double(const Vec&)> fn,
                                  std::function<Vec(const Vec&)> grad,
                                  std::string name) {
  CostFunction c(Kind::kCustom, {}, std::move(name));
  c.custom_fn_ = std::move(fn);
  c.custom_grad_ = std::move(grad);
  return c;
}

double CostFunction::Cost(const Vec& s) const {
  switch (kind_) {
    case Kind::kL1:
      return NormL1(s);
    case Kind::kL2:
      return NormL2(s);
    case Kind::kWeightedL1: {
      IQ_DCHECK(unit_costs_.size() == s.size());
      double c = 0.0;
      for (size_t i = 0; i < s.size(); ++i) c += unit_costs_[i] * std::fabs(s[i]);
      return c;
    }
    case Kind::kWeightedL2: {
      IQ_DCHECK(unit_costs_.size() == s.size());
      double c = 0.0;
      for (size_t i = 0; i < s.size(); ++i) c += unit_costs_[i] * s[i] * s[i];
      return std::sqrt(c);
    }
    case Kind::kQuadratic: {
      IQ_DCHECK(unit_costs_.size() == s.size());
      double c = 0.0;
      for (size_t i = 0; i < s.size(); ++i) c += unit_costs_[i] * s[i] * s[i];
      return c;
    }
    case Kind::kCustom:
      return custom_fn_(s);
  }
  return 0.0;
}

Vec CostFunction::Gradient(const Vec& s) const {
  Vec g(s.size(), 0.0);
  switch (kind_) {
    case Kind::kL1:
      for (size_t i = 0; i < s.size(); ++i) g[i] = Sign(s[i]);
      return g;
    case Kind::kL2: {
      double n = NormL2(s);
      if (n < 1e-15) return g;
      for (size_t i = 0; i < s.size(); ++i) g[i] = s[i] / n;
      return g;
    }
    case Kind::kWeightedL1:
      for (size_t i = 0; i < s.size(); ++i) g[i] = unit_costs_[i] * Sign(s[i]);
      return g;
    case Kind::kWeightedL2: {
      double n = Cost(s);
      if (n < 1e-15) return g;
      for (size_t i = 0; i < s.size(); ++i) g[i] = unit_costs_[i] * s[i] / n;
      return g;
    }
    case Kind::kQuadratic:
      for (size_t i = 0; i < s.size(); ++i) g[i] = 2 * unit_costs_[i] * s[i];
      return g;
    case Kind::kCustom:
      if (custom_grad_) return custom_grad_(s);
      return NumericGradient(custom_fn_, s);
  }
  return g;
}

}  // namespace iq
