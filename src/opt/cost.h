#ifndef IQ_OPT_COST_H_
#define IQ_OPT_COST_H_

#include <functional>
#include <string>

#include "geom/vec.h"

namespace iq {

/// User-defined cost model for improvement strategies (paper §3.1: "we let
/// the query issuer specify such resource requirements using a cost function
/// Cost_p(s)"). Built-in families cover the models used in the paper's
/// experiments (Eq. 30 is L2) plus common alternatives; Custom accepts any
/// callable.
class CostFunction {
 public:
  enum class Kind { kL1, kL2, kWeightedL1, kWeightedL2, kQuadratic, kCustom };

  /// Σ |s_i|.
  static CostFunction L1();
  /// sqrt(Σ s_i^2) — the paper's experimental cost function (Eq. 30).
  static CostFunction L2();
  /// Σ c_i |s_i| with per-attribute unit costs c >= 0.
  static CostFunction WeightedL1(Vec unit_costs);
  /// sqrt(Σ c_i s_i^2).
  static CostFunction WeightedL2(Vec unit_costs);
  /// Σ c_i s_i^2 (smooth, no square root).
  static CostFunction Quadratic(Vec unit_costs);
  /// Arbitrary user cost; `grad` optional (numeric differences otherwise).
  static CostFunction Custom(std::function<double(const Vec&)> fn,
                             std::function<Vec(const Vec&)> grad = nullptr,
                             std::string name = "custom");

  double Cost(const Vec& s) const;
  /// Subgradient for L1 kinds (sign convention: 0 at 0).
  Vec Gradient(const Vec& s) const;

  Kind kind() const { return kind_; }
  const Vec& unit_costs() const { return unit_costs_; }
  const std::string& name() const { return name_; }

  /// True for kinds with a known closed-form single-halfspace minimizer.
  bool HasClosedFormHit() const { return kind_ != Kind::kCustom; }

 private:
  CostFunction(Kind kind, Vec unit_costs, std::string name)
      : kind_(kind), unit_costs_(std::move(unit_costs)),
        name_(std::move(name)) {}

  Kind kind_;
  Vec unit_costs_;
  std::function<double(const Vec&)> custom_fn_;
  std::function<Vec(const Vec&)> custom_grad_;
  std::string name_;
};

}  // namespace iq

#endif  // IQ_OPT_COST_H_
