#include "opt/bounds.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace iq {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

AdjustBox AdjustBox::Unbounded(int dim) {
  AdjustBox box;
  box.lower_.assign(static_cast<size_t>(dim), -kInf);
  box.upper_.assign(static_cast<size_t>(dim), kInf);
  return box;
}

AdjustBox AdjustBox::WithAdjustable(int dim,
                                    const std::vector<bool>& adjustable) {
  IQ_CHECK(static_cast<int>(adjustable.size()) == dim);
  AdjustBox box = Unbounded(dim);
  for (int j = 0; j < dim; ++j) {
    if (!adjustable[static_cast<size_t>(j)]) box.Freeze(j);
  }
  return box;
}

AdjustBox AdjustBox::FromValueRange(const Vec& p, const Vec& value_lo,
                                    const Vec& value_hi) {
  IQ_CHECK(p.size() == value_lo.size() && p.size() == value_hi.size());
  AdjustBox box = Unbounded(static_cast<int>(p.size()));
  for (size_t j = 0; j < p.size(); ++j) {
    box.lower_[j] = value_lo[j] - p[j];
    box.upper_[j] = value_hi[j] - p[j];
  }
  return box;
}

void AdjustBox::SetRange(int j, double lo, double hi) {
  IQ_CHECK(lo <= hi);
  lower_[static_cast<size_t>(j)] = lo;
  upper_[static_cast<size_t>(j)] = hi;
}

void AdjustBox::Freeze(int j) { SetRange(j, 0.0, 0.0); }

bool AdjustBox::IsFrozen(int j) const {
  return lower_[static_cast<size_t>(j)] == 0.0 &&
         upper_[static_cast<size_t>(j)] == 0.0;
}

bool AdjustBox::Contains(const Vec& s, double tol) const {
  IQ_DCHECK(s.size() == lower_.size());
  for (size_t j = 0; j < s.size(); ++j) {
    if (s[j] < lower_[j] - tol || s[j] > upper_[j] + tol) return false;
  }
  return true;
}

Vec AdjustBox::Clamp(const Vec& s) const {
  Vec out(s.size());
  for (size_t j = 0; j < s.size(); ++j) {
    out[j] = std::clamp(s[j], lower_[j], upper_[j]);
  }
  return out;
}

}  // namespace iq
