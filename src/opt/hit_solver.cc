#include "opt/hit_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace iq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Active-set solve of: min Σ c_j s_j^2  s.t.  a.s <= r, s in box.
/// (Also optimal for sqrt(Σ c_j s_j^2) — monotone transform.)
Result<Vec> SolveQuadratic(const Vec& a, double r, const Vec& unit_costs,
                           const AdjustBox& box) {
  const size_t d = a.size();
  Vec s(d, 0.0);
  if (r >= 0) return s;

  std::vector<bool> fixed(d, false);
  double need = r;  // remaining RHS for the free coordinates
  for (size_t round = 0; round <= d; ++round) {
    double denom = 0.0;
    for (size_t j = 0; j < d; ++j) {
      if (!fixed[j] && a[j] != 0.0) denom += a[j] * a[j] / unit_costs[j];
    }
    if (denom <= 0.0) {
      return Status::FailedPrecondition(
          "constraint cannot be met: no usable coordinates");
    }
    // Lagrangian optimum on the free coordinates (equality a.s = need).
    bool clamped_any = false;
    for (size_t j = 0; j < d; ++j) {
      if (fixed[j] || a[j] == 0.0) continue;
      s[j] = (a[j] / unit_costs[j]) * need / denom;
    }
    for (size_t j = 0; j < d; ++j) {
      if (fixed[j] || a[j] == 0.0) continue;
      double lo = box.lower()[j];
      double hi = box.upper()[j];
      if (s[j] < lo || s[j] > hi) {
        s[j] = std::clamp(s[j], lo, hi);
        fixed[j] = true;
        clamped_any = true;
      }
    }
    if (!clamped_any) return s;
    // Recompute the requirement left for the still-free coordinates.
    need = r;
    for (size_t j = 0; j < d; ++j) {
      if (fixed[j]) need -= a[j] * s[j];
    }
    if (need >= 0) {
      // Fixed coordinates alone already satisfy the constraint.
      for (size_t j = 0; j < d; ++j) {
        if (!fixed[j]) s[j] = 0.0;
      }
      return s;
    }
  }
  return Status::Internal("active-set solver did not converge");
}

/// Greedy best-efficiency fill for: min Σ c_j |s_j| s.t. a.s <= r, s in box.
/// Optimal because the objective and the constraint are both separable and
/// linear in |s_j| once the movement direction (-sign(a_j)) is fixed.
Result<Vec> SolveL1(const Vec& a, double r, const Vec& unit_costs,
                    const AdjustBox& box) {
  const size_t d = a.size();
  Vec s(d, 0.0);
  if (r >= 0) return s;

  struct Move {
    size_t j;
    double efficiency;  // constraint reduction per unit cost
    double capacity;    // max |s_j| allowed by the box in the move direction
    double dir;         // sign of s_j
  };
  std::vector<Move> moves;
  for (size_t j = 0; j < d; ++j) {
    if (a[j] == 0.0) continue;
    double dir = a[j] > 0 ? -1.0 : 1.0;  // decrease a.s
    double cap = dir < 0 ? -box.lower()[j] : box.upper()[j];
    if (cap <= 0) continue;
    double c = unit_costs[j];
    double eff = c > 0 ? std::fabs(a[j]) / c : kInf;
    moves.push_back({j, eff, cap, dir});
  }
  std::sort(moves.begin(), moves.end(), [](const Move& x, const Move& y) {
    return x.efficiency > y.efficiency;
  });

  double need = -r;  // amount by which a.s must be decreased below 0
  for (const Move& m : moves) {
    if (need <= 0) break;
    double per_unit = std::fabs(a[m.j]);
    double take = std::min(m.capacity, need / per_unit);
    s[m.j] = m.dir * take;
    need -= take * per_unit;
  }
  if (need > 1e-12 * std::max(1.0, std::fabs(r))) {
    return Status::FailedPrecondition(
        "constraint cannot be met within the adjustment bounds");
  }
  return s;
}

Vec OnesIfEmpty(const Vec& unit_costs, size_t d) {
  if (!unit_costs.empty()) return unit_costs;
  return Vec(d, 1.0);
}

}  // namespace

Result<HitSolution> MinCostForHalfspace(const Vec& a, double r,
                                        const CostFunction& cost,
                                        const AdjustBox& box) {
  IQ_CHECK(static_cast<int>(a.size()) == box.dim());
  using Kind = CostFunction::Kind;
  Result<Vec> s = Status::Unimplemented("");
  switch (cost.kind()) {
    case Kind::kL2:
    case Kind::kWeightedL2:
    case Kind::kQuadratic:
      s = SolveQuadratic(a, r, OnesIfEmpty(cost.unit_costs(), a.size()), box);
      break;
    case Kind::kL1:
    case Kind::kWeightedL1:
      s = SolveL1(a, r, OnesIfEmpty(cost.unit_costs(), a.size()), box);
      break;
    case Kind::kCustom:
      return MinCostNonlinear(
          [&a, r](const Vec& v) { return Dot(a, v) - r; },
          [&a](const Vec&) { return a; }, cost, box);
  }
  if (!s.ok()) return s.status();
  return HitSolution{*s, cost.Cost(*s)};
}

Result<HitSolution> MinCostNonlinear(
    const std::function<double(const Vec&)>& constraint,
    const std::function<Vec(const Vec&)>& constraint_grad,
    const CostFunction& cost, const AdjustBox& box,
    const PenaltySolverOptions& options) {
  const int d = box.dim();
  auto grad_of_constraint = [&](const Vec& s) -> Vec {
    if (constraint_grad) return constraint_grad(s);
    const double h = 1e-6;
    Vec g(static_cast<size_t>(d));
    Vec probe = s;
    for (int j = 0; j < d; ++j) {
      probe[static_cast<size_t>(j)] += h;
      double up = constraint(probe);
      probe[static_cast<size_t>(j)] -= 2 * h;
      double down = constraint(probe);
      probe[static_cast<size_t>(j)] += h;
      g[static_cast<size_t>(j)] = (up - down) / (2 * h);
    }
    return g;
  };

  Vec s = box.Clamp(Zeros(d));
  if (constraint(s) <= 0) return HitSolution{s, cost.Cost(s)};

  double mu = options.initial_mu;
  Vec best;
  bool have_feasible = false;
  double best_cost = kInf;

  for (int round = 0; round < options.max_outer_rounds; ++round, mu *= 10) {
    auto objective = [&](const Vec& v) {
      double g = std::max(0.0, constraint(v));
      return cost.Cost(v) + mu * g * g;
    };
    auto gradient = [&](const Vec& v) {
      Vec g = cost.Gradient(v);
      double viol = constraint(v);
      if (viol > 0) {
        Vec cg = grad_of_constraint(v);
        for (size_t j = 0; j < g.size(); ++j) g[j] += 2 * mu * viol * cg[j];
      }
      return g;
    };

    double step = 1.0;
    double fv = objective(s);
    for (int it = 0; it < options.max_inner_iters; ++it) {
      Vec g = gradient(s);
      double gnorm = NormL2(g);
      if (gnorm < 1e-14) break;
      // Backtracking line search on the projected step.
      bool moved = false;
      for (int bt = 0; bt < 40; ++bt) {
        Vec cand = box.Clamp(Sub(s, Scale(g, step / std::max(1.0, gnorm))));
        double fc = objective(cand);
        if (fc < fv - 1e-15) {
          s = std::move(cand);
          fv = fc;
          moved = true;
          step *= 1.3;
          break;
        }
        step *= 0.5;
        if (step < options.step_tol) break;
      }
      if (!moved || step < options.step_tol) break;
    }
    if (constraint(s) <= options.feasibility_tol) {
      double c = cost.Cost(s);
      if (c < best_cost) {
        best_cost = c;
        best = s;
        have_feasible = true;
      }
    }
  }
  if (!have_feasible) {
    return Status::FailedPrecondition(
        "penalty solver found no feasible strategy");
  }
  return HitSolution{best, best_cost};
}

}  // namespace iq
