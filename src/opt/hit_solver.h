#ifndef IQ_OPT_HIT_SOLVER_H_
#define IQ_OPT_HIT_SOLVER_H_

#include <functional>

#include "geom/vec.h"
#include "opt/bounds.h"
#include "opt/cost.h"
#include "util/status.h"

namespace iq {

/// Solution of the single-constraint subproblem (paper Eq. 13-14): the
/// cheapest strategy that makes the target hit one query.
struct HitSolution {
  Vec s;
  double cost = 0.0;
};

/// Minimizes cost(s) subject to the linear constraint a.s <= r and s inside
/// `box`. This is the exact subproblem for linear(ized) utilities: hitting
/// query q with threshold t requires w.(p+s) < t, i.e. a = w and
/// r = t - margin - w.p.
///
/// Closed forms are used for the built-in cost families (active-set for the
/// L2/quadratic ones, greedy best-efficiency fill for the L1 ones); Custom
/// costs fall back to the penalty solver. Returns FailedPrecondition when no
/// s in the box satisfies the constraint.
Result<HitSolution> MinCostForHalfspace(const Vec& a, double r,
                                        const CostFunction& cost,
                                        const AdjustBox& box);

/// Options for the penalty-based solver used with non-linear constraints or
/// custom costs.
struct PenaltySolverOptions {
  int max_outer_rounds = 12;       // penalty escalations (mu *= 10)
  int max_inner_iters = 300;       // gradient steps per round
  double initial_mu = 10.0;
  double feasibility_tol = 1e-8;
  double step_tol = 1e-12;
};

/// Minimizes cost(s) subject to constraint(s) <= 0 and s inside `box`,
/// via an exterior quadratic-penalty method with projected backtracking
/// gradient descent. `constraint_grad` may be empty (numeric differences).
/// Returns FailedPrecondition when no feasible point is found.
Result<HitSolution> MinCostNonlinear(
    const std::function<double(const Vec&)>& constraint,
    const std::function<Vec(const Vec&)>& constraint_grad,
    const CostFunction& cost, const AdjustBox& box,
    const PenaltySolverOptions& options = {});

}  // namespace iq

#endif  // IQ_OPT_HIT_SOLVER_H_
