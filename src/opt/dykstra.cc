#include "opt/dykstra.h"

#include <cmath>

#include "util/check.h"

namespace iq {

Result<Vec> DykstraProject(const std::vector<Vec>& A, const Vec& b,
                           const AdjustBox& box, const Vec& target,
                           int max_iters, double tol) {
  IQ_CHECK(A.size() == b.size());
  const size_t m = A.size();
  const size_t num_sets = m + 1;  // halfspaces + the box
  Vec x = target;
  // One correction vector per convex set (Dykstra's memory terms).
  std::vector<Vec> corrections(num_sets, Zeros(static_cast<int>(x.size())));

  std::vector<double> norms2(m);
  for (size_t i = 0; i < m; ++i) norms2[i] = NormL2Squared(A[i]);

  for (int iter = 0; iter < max_iters; ++iter) {
    double max_shift = 0.0;
    for (size_t set = 0; set < num_sets; ++set) {
      Vec y = Add(x, corrections[set]);
      Vec projected;
      if (set < m) {
        double viol = Dot(A[set], y) - b[set];
        if (viol > 0 && norms2[set] > 0) {
          projected = Sub(y, Scale(A[set], viol / norms2[set]));
        } else {
          projected = y;
        }
      } else {
        projected = box.Clamp(y);
      }
      corrections[set] = Sub(y, projected);
      max_shift = std::max(max_shift, Distance(x, projected));
      x = std::move(projected);
    }
    if (max_shift < tol) break;
  }

  // Verify feasibility of the final iterate.
  double scale = std::max(1.0, NormL2(x));
  for (size_t i = 0; i < m; ++i) {
    if (Dot(A[i], x) - b[i] > 1e-6 * scale) {
      return Status::FailedPrecondition(
          "Dykstra projection did not reach feasibility");
    }
  }
  if (!box.Contains(x, 1e-6 * scale)) {
    return Status::FailedPrecondition("projection violates the box bounds");
  }
  return x;
}

}  // namespace iq
