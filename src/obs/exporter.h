#ifndef IQ_OBS_EXPORTER_H_
#define IQ_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/status.h"

namespace iq {

/// Live observability endpoint (DESIGN.md §9): a dependency-free,
/// single-threaded HTTP/1.0 server exposing the process-global metrics
/// registry and flight recorder while an engine or bench is running.
///
///   /metrics   Prometheus text exposition format (version 0.0.4):
///              counters and gauges one sample each, the base-2 histograms
///              as cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
///   /healthz   "ok" — liveness probe.
///   /statusz   JSON snapshot: uptime, metrics (MetricsSnapshot::ToJson)
///              and event-log counts.
///   /profilez  live scalability profile (obs/profile.h) as line-oriented
///              JSON; a `"enabled": false` placeholder when contention
///              profiling is off.
///
/// One background thread accepts and serves connections sequentially —
/// scrapes are rare and responses are small, so there is nothing to win
/// from concurrency, and a single thread keeps the server trivially safe.
/// The exporter binds the loopback interface only; it is an operator tool,
/// not a public endpoint. Start it from an engine (EngineOptions::
/// exporter_port) or a bench (--exporter-port=); both are thin wrappers
/// over this class.

// ---- pure rendering (golden-testable, no sockets involved) ----

/// Maps a dotted registry name onto the Prometheus metric-name charset:
/// "iq.engine.min_cost_nanos" -> "iq_engine_min_cost_nanos". Any character
/// outside [a-zA-Z0-9_:] becomes '_'; a leading digit gains a '_' prefix.
std::string PrometheusName(const std::string& name);

/// Escapes a HELP text / label value per the exposition format: backslash,
/// double quote (label values) and newline.
std::string PrometheusEscape(const std::string& s);

/// Renders a full snapshot in text exposition format. Histogram buckets are
/// cumulative; bucket i of the base-2 layout (integer samples in
/// [2^(i-1), 2^i), bucket 0 = {0}) maps to the inclusive upper bound
/// le="2^i - 1", and the open top bucket to le="+Inf".
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// The full HTTP response (status line, headers, body) the exporter sends
/// for `path` — exposed so tests can cover routing without a socket.
std::string ExporterResponseForPath(const std::string& path,
                                    uint64_t uptime_ns);

// ---- the server ----

class MetricsExporter {
 public:
  MetricsExporter() = default;
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, see port())
  /// and starts the serving thread. Fails if already running or the bind is
  /// refused.
  Status Start(int port) IQ_EXCLUDES(mu_);

  /// Stops the serving thread and closes the socket. Idempotent; also run
  /// by the destructor.
  void Stop() IQ_EXCLUDES(mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port while running (the resolved one when Start got 0);
  /// -1 when stopped.
  int port() const { return port_.load(std::memory_order_acquire); }

 private:
  /// The serving thread's body. Takes the listening socket and the start
  /// timestamp by value, captured at Start() time: the loop never touches
  /// guarded members, so serving needs no locks and Stop() only synchronizes
  /// with the thread through `stop_` and join.
  void ServeLoop(int listen_fd, uint64_t start_ns);

  /// Guards the Start/Stop lifecycle transitions (bind, thread launch,
  /// join, close), making concurrent Start/Stop calls safe and idempotent.
  Mutex mu_{LockRank::kExporter, "MetricsExporter::mu_"};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{-1};
  int listen_fd_ IQ_GUARDED_BY(mu_) = -1;
  std::thread thread_ IQ_GUARDED_BY(mu_);
  uint64_t start_ns_ IQ_GUARDED_BY(mu_) = 0;
};

/// Blocking loopback HTTP GET against 127.0.0.1:`port`, returning the
/// response body. This is the client half of the exporter's loopback
/// round-trip tests and of `--scrape-metrics=` in the benches; it lives here
/// so src/obs/exporter.cc stays the only translation unit touching raw
/// sockets (tools/lint.sh enforces that).
Result<std::string> HttpGetLocal(int port, const std::string& path);

}  // namespace iq

#endif  // IQ_OBS_EXPORTER_H_
