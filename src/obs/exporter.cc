#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/event_log.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace iq {
namespace {

bool IsPrometheusNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Largest value counted by cumulative bucket `i` of the base-2 layout:
/// bucket 0 = {0} -> le="0"; bucket i >= 1 = [2^(i-1), 2^i) -> every integer
/// sample it holds is <= 2^i - 1, which is exactly the next bucket's lower
/// bound minus one.
uint64_t BucketInclusiveUpperBound(int i) {
  return Histogram::BucketLowerBound(i + 1) - 1;
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = StrFormat(
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, content_type, body.size());
  out += body;
  return out;
}

/// Thread-safe strerror: std::strerror may return a pointer into shared
/// static storage (clang-tidy concurrency-mt-unsafe), and the exporter
/// formats errors both on caller threads and the serving thread. Uses the
/// POSIX strerror_r into a local buffer instead.
std::string SafeStrError(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // glibc's _GNU_SOURCE variant returns the message pointer (which may be a
  // static string rather than `buf`).
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return StrFormat("errno %d", err);
  }
  return std::string(buf);
#endif
}

/// Splits a registry name with an embedded label block — the convention
/// obs/profile.cc registers per-rank / per-site gauges under, e.g.
/// "iq.lock.wait_nanos{rank=kEngine}" — into the base name and a rendered
/// Prometheus label block (`{rank="kEngine"}`). Blocks are `{k=v,k2=v2}`
/// with no quotes, so registry names stay JSON-safe in /statusz. Names
/// without a block pass through with an empty label string.
void SplitEmbeddedLabels(const std::string& name, std::string* base,
                         std::string* labels) {
  size_t pos = name.find('{');
  if (pos == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, pos);
  std::string out = "{";
  bool first = true;
  for (std::string_view part :
       StrSplit(name.substr(pos + 1, name.size() - pos - 2), ',')) {
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) continue;
    out += StrFormat(
        "%s%s=\"%s\"", first ? "" : ",",
        PrometheusName(std::string(part.substr(0, eq))).c_str(),
        PrometheusEscape(std::string(part.substr(eq + 1))).c_str());
    first = false;
  }
  out += "}";
  *labels = out;
}

/// Writes the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (IsPrometheusNameChar(c, /*first=*/false)) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || !IsPrometheusNameChar(out[0], /*first=*/true)) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  // Same-family labeled samples (snapshot maps are name-sorted, so they are
  // adjacent) share one HELP/TYPE header — duplicating it per sample would
  // be invalid exposition format.
  std::string prev_family;
  for (const auto& [name, value] : snapshot.counters) {
    std::string base;
    std::string labels;
    SplitEmbeddedLabels(name, &base, &labels);
    std::string pn = PrometheusName(base);
    if (pn != prev_family) {
      out += StrFormat("# HELP %s %s\n", pn.c_str(),
                       PrometheusEscape(base).c_str());
      out += StrFormat("# TYPE %s counter\n", pn.c_str());
      prev_family = pn;
    }
    out += StrFormat("%s%s %llu\n", pn.c_str(), labels.c_str(),
                     static_cast<unsigned long long>(value));
  }
  prev_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    std::string base;
    std::string labels;
    SplitEmbeddedLabels(name, &base, &labels);
    std::string pn = PrometheusName(base);
    if (pn != prev_family) {
      out += StrFormat("# HELP %s %s\n", pn.c_str(),
                       PrometheusEscape(base).c_str());
      out += StrFormat("# TYPE %s gauge\n", pn.c_str());
      prev_family = pn;
    }
    out += StrFormat("%s%s %lld\n", pn.c_str(), labels.c_str(),
                     static_cast<long long>(value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::string pn = PrometheusName(h.name);
    out += StrFormat("# HELP %s %s\n", pn.c_str(),
                     PrometheusEscape(h.name).c_str());
    out += StrFormat("# TYPE %s histogram\n", pn.c_str());
    uint64_t cumulative = 0;
    const int num_buckets = static_cast<int>(h.buckets.size());
    for (int i = 0; i < num_buckets; ++i) {
      cumulative += h.buckets[static_cast<size_t>(i)];
      if (i == num_buckets - 1) break;  // the top bucket renders as +Inf
      out += StrFormat("%s_bucket{le=\"%llu\"} %llu\n", pn.c_str(),
                       static_cast<unsigned long long>(
                           BucketInclusiveUpperBound(i)),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", pn.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrFormat("%s_sum %llu\n", pn.c_str(),
                     static_cast<unsigned long long>(h.sum));
    out += StrFormat("%s_count %llu\n", pn.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

std::string ExporterResponseForPath(const std::string& path,
                                    uint64_t uptime_ns) {
  if (path == "/metrics") {
    return HttpResponse(
        "200 OK", "text/plain; version=0.0.4; charset=utf-8",
        RenderPrometheusText(MetricsRegistry::Global().Snapshot()));
  }
  if (path == "/healthz") {
    return HttpResponse("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/statusz") {
    const EventLog& log = EventLog::Global();
    std::string body = StrFormat(
        "{\n  \"uptime_ns\": %llu,\n  \"events\": {\"recorded\": %llu, "
        "\"retained\": %zu, \"dropped\": %llu},\n  \"metrics\": ",
        static_cast<unsigned long long>(uptime_ns),
        static_cast<unsigned long long>(log.recorded_count()),
        log.Snapshot().size(),
        static_cast<unsigned long long>(log.dropped_count()));
    body += MetricsRegistry::Global().Snapshot().ToJson();
    body += "}\n";
    return HttpResponse("200 OK", "application/json", body);
  }
  if (path == "/profilez") {
    return HttpResponse("200 OK", "application/json", CurrentProfileJson());
  }
  if (path == "/tracez") {
    return HttpResponse("200 OK", "application/json",
                        TraceCollector::Global().TracezJson());
  }
  // /tracez?trace=ID — one retained trace as Perfetto/Chrome JSON (load in
  // chrome://tracing), with per-thread lanes and cross-thread flow arrows.
  if (path.compare(0, 14, "/tracez?trace=") == 0) {
    auto id = ParseInt(path.substr(14));
    std::string body =
        id.ok() && *id > 0
            ? TraceCollector::Global().TraceJson(static_cast<uint64_t>(*id))
            : std::string();
    if (body.empty()) {
      return HttpResponse("404 Not Found", "text/plain; charset=utf-8",
                          "no retained trace with that id (see /tracez)\n");
    }
    return HttpResponse("200 OK", "application/json", body);
  }
  return HttpResponse(
      "404 Not Found", "text/plain; charset=utf-8",
      "not found (try /metrics, /healthz, /statusz, /profilez, /tracez)\n");
}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start(int port) {
  MutexLock lock(&mu_);
  if (running()) return Status::FailedPrecondition("exporter already running");
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("exporter port out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket: %s", SafeStrError(errno).c_str()));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(
        StrFormat("bind 127.0.0.1:%d: %s", port, SafeStrError(errno).c_str()));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st =
        Status::Internal(StrFormat("listen: %s", SafeStrError(errno).c_str()));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Status::Internal(
        StrFormat("getsockname: %s", SafeStrError(errno).c_str()));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  start_ns_ = TraceNowNanos();
  stop_.store(false, std::memory_order_release);
  port_.store(static_cast<int>(ntohs(addr.sin_port)),
              std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // The serving thread gets the fd and the start timestamp by value so it
  // never reads mu_-guarded members; its only shared state is `stop_`.
  thread_ = std::thread(
      [this, fd, start_ns = start_ns_] { ServeLoop(fd, start_ns); });
  return Status::Ok();
}

void MetricsExporter::Stop() {
  MutexLock lock(&mu_);
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(-1, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void MetricsExporter::ServeLoop(int listen_fd, uint64_t start_ns) {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    // Short poll timeout so Stop() is honored promptly without needing a
    // self-pipe; an idle exporter wakes five times a second.
    int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    // Requests are one GET line plus a few headers; a single bounded read
    // is enough, and a malformed/slow client just gets a 404 or a reset.
    char buf[2048];
    ssize_t n = ::read(client, buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      std::string request(buf);
      std::string path = "/";
      size_t sp1 = request.find(' ');
      if (request.compare(0, 4, "GET ") == 0 && sp1 != std::string::npos) {
        size_t sp2 = request.find(' ', sp1 + 1);
        if (sp2 != std::string::npos) {
          path = request.substr(sp1 + 1, sp2 - sp1 - 1);
        }
      }
      WriteAll(client,
               ExporterResponseForPath(path, TraceNowNanos() - start_ns));
    }
    ::close(client);
  }
}

Result<std::string> HttpGetLocal(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket: %s", SafeStrError(errno).c_str()));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(StrFormat(
        "connect 127.0.0.1:%d: %s", port, SafeStrError(errno).c_str()));
    ::close(fd);
    return st;
  }
  std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return Status::Internal("request write failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("malformed HTTP response");
  }
  return response.substr(header_end + 4);
}

}  // namespace iq
