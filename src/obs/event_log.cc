#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace iq {
namespace {

/// JSON string escaping for the free-form `note` field: quotes, backslashes
/// and control characters (JSONL must stay one-event-per-line, so newlines
/// in particular must not survive verbatim).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::atomic<uint64_t> g_dropped{0};

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSolveStart:
      return "solve_start";
    case EventType::kSolveEnd:
      return "solve_end";
    case EventType::kApplyStrategy:
      return "apply_strategy";
    case EventType::kIndexBuild:
      return "index_build";
    case EventType::kIndexMaintenance:
      return "index_maintenance";
    case EventType::kPoolSaturation:
      return "pool_saturation";
    case EventType::kError:
      return "error";
  }
  return "?";
}

std::string Event::ToJson() const {
  std::string out = StrFormat(
      "{\"seq\":%llu,\"t_ns\":%llu,\"type\":\"%s\"",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(t_ns), EventTypeName(type));
  if (op != nullptr) out += StrFormat(",\"op\":\"%s\"", op);
  switch (type) {
    case EventType::kSolveStart:
      out += StrFormat(",\"scheme\":\"%s\",\"target\":%d,\"tau\":%d,"
                       "\"beta\":%.6g,\"epoch\":%llu",
                       scheme != nullptr ? scheme : "?", target, tau, beta,
                       static_cast<unsigned long long>(epoch));
      break;
    case EventType::kSolveEnd:
      out += StrFormat(
          ",\"scheme\":\"%s\",\"target\":%d,\"ok\":%s,\"cost\":%.6g,"
          "\"hits_before\":%d,\"hits_after\":%d,\"iterations\":%d,"
          "\"candidates_generated\":%llu,\"candidates_evaluated\":%llu,"
          "\"queries_rescored\":%llu,\"queries_reused\":%llu,"
          "\"seconds\":%.6g",
          scheme != nullptr ? scheme : "?", target, ok ? "true" : "false",
          cost, hits_before, hits_after, iterations,
          static_cast<unsigned long long>(candidates_generated),
          static_cast<unsigned long long>(candidates_evaluated),
          static_cast<unsigned long long>(queries_rescored),
          static_cast<unsigned long long>(queries_reused), seconds);
      out += StrFormat(",\"epoch\":%llu",
                       static_cast<unsigned long long>(epoch));
      break;
    case EventType::kApplyStrategy:
      out += StrFormat(
          ",\"target\":%d,\"ok\":%s,\"queries_reranked\":%llu,"
          "\"queries_reused\":%llu,\"affected_subspaces\":%lld,"
          "\"seconds\":%.6g,\"epoch\":%llu",
          target, ok ? "true" : "false",
          static_cast<unsigned long long>(queries_rescored),
          static_cast<unsigned long long>(queries_reused),
          static_cast<long long>(n), seconds,
          static_cast<unsigned long long>(epoch));
      break;
    case EventType::kIndexBuild:
      out += StrFormat(",\"num_queries\":%d,\"num_subdomains\":%d,"
                       "\"seconds\":%.6g,\"epoch\":%llu",
                       num_queries, num_subdomains, seconds,
                       static_cast<unsigned long long>(epoch));
      break;
    case EventType::kIndexMaintenance:
      out += StrFormat(",\"id\":%d,\"ok\":%s,\"epoch\":%llu", target,
                       ok ? "true" : "false",
                       static_cast<unsigned long long>(epoch));
      break;
    case EventType::kPoolSaturation:
      out += StrFormat(",\"work_units\":%lld,\"num_threads\":%d",
                       static_cast<long long>(n), num_threads);
      break;
    case EventType::kError:
      break;
  }
  if (trace_id != 0) {
    out += StrFormat(",\"trace_id\":%llu",
                     static_cast<unsigned long long>(trace_id));
  }
  if (!note.empty()) {
    out += StrFormat(",\"note\":\"%s\"", JsonEscape(note).c_str());
  }
  out += "}";
  return out;
}

EventLog& EventLog::Global() {
  // Leaked on purpose, like the metrics registry: instrumented paths may
  // record from static destructors.
  static EventLog* log = new EventLog();
  return *log;
}

EventLog::Stripe& EventLog::StripeForThisThread() {
  size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % kStripes];
}

void EventLog::Record(Event e) {
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.t_ns = TraceNowNanos();
  recorded_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = StripeForThisThread();
  MutexLock lock(&stripe.mu);
  if (stripe.ring.size() < kStripeCapacity) {
    stripe.ring.push_back(std::move(e));
  } else {
    stripe.ring[static_cast<size_t>(stripe.next % kStripeCapacity)] =
        std::move(e);
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    // Mirrored onto the metrics registry so scrapers see ring overwrites
    // without parsing /statusz. Registering while the stripe lock is held
    // is rank-legal (kEventLogStripe < kMetricsRegistry); the static caches
    // the pointer so steady-state drops are one extra relaxed increment.
    static Counter* dropped_counter =
        MetricsRegistry::Global().GetCounter("iq.eventlog.dropped");
    dropped_counter->Increment();
  }
  ++stripe.next;
}

std::vector<Event> EventLog::Snapshot() const {
  std::vector<Event> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    out.insert(out.end(), stripe.ring.begin(), stripe.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::string EventLog::ToJsonl() const {
  std::string out;
  for (const Event& e : Snapshot()) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

Status EventLog::WriteJsonl(const std::string& path) const {
  std::string jsonl = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  int close_rc = std::fclose(f);
  if (written != jsonl.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

void EventLog::Clear() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    stripe.ring.clear();
    stripe.next = 0;
  }
}

uint64_t EventLog::dropped_count() const {
  return g_dropped.load(std::memory_order_relaxed);
}

Event EventLog::SolveStart(const char* op, const char* scheme, int target,
                           int tau, double beta, uint64_t epoch) {
  Event e;
  e.type = EventType::kSolveStart;
  e.op = op;
  e.scheme = scheme;
  e.target = target;
  e.tau = tau;
  e.beta = beta;
  e.epoch = epoch;
  return e;
}

Event EventLog::SolveEnd(const char* op, const char* scheme, int target,
                         bool ok, double cost, int hits_before,
                         int hits_after, int iterations,
                         uint64_t candidates_generated,
                         uint64_t candidates_evaluated,
                         uint64_t queries_rescored, uint64_t queries_reused,
                         double seconds, uint64_t epoch) {
  Event e;
  e.type = EventType::kSolveEnd;
  e.op = op;
  e.scheme = scheme;
  e.target = target;
  e.ok = ok;
  e.cost = cost;
  e.hits_before = hits_before;
  e.hits_after = hits_after;
  e.iterations = iterations;
  e.candidates_generated = candidates_generated;
  e.candidates_evaluated = candidates_evaluated;
  e.queries_rescored = queries_rescored;
  e.queries_reused = queries_reused;
  e.seconds = seconds;
  e.epoch = epoch;
  return e;
}

Event EventLog::ApplyStrategy(int target, bool ok, uint64_t queries_reranked,
                              uint64_t queries_reused, int64_t affected,
                              double seconds, uint64_t epoch) {
  Event e;
  e.type = EventType::kApplyStrategy;
  e.op = "ApplyStrategy";
  e.target = target;
  e.ok = ok;
  e.queries_rescored = queries_reranked;
  e.queries_reused = queries_reused;
  e.n = affected;
  e.seconds = seconds;
  e.epoch = epoch;
  return e;
}

Event EventLog::IndexBuild(int num_queries, int num_subdomains,
                           double seconds, uint64_t epoch) {
  Event e;
  e.type = EventType::kIndexBuild;
  e.op = "Build";
  e.num_queries = num_queries;
  e.num_subdomains = num_subdomains;
  e.seconds = seconds;
  e.epoch = epoch;
  return e;
}

Event EventLog::IndexMaintenance(const char* op, int id, bool ok,
                                 uint64_t epoch) {
  Event e;
  e.type = EventType::kIndexMaintenance;
  e.op = op;
  e.target = id;
  e.ok = ok;
  e.epoch = epoch;
  return e;
}

Event EventLog::PoolSaturation(const char* op, int64_t work_units,
                               int num_threads) {
  Event e;
  e.type = EventType::kPoolSaturation;
  e.op = op;
  e.n = work_units;
  e.num_threads = num_threads;
  return e;
}

Event EventLog::Error(const char* op, std::string note) {
  Event e;
  e.type = EventType::kError;
  e.op = op;
  e.note = std::move(note);
  return e;
}

}  // namespace iq
