#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace iq {
namespace {

/// Total length of the union of half-open intervals (merge-after-sort).
uint64_t UnionLength(std::vector<std::pair<uint64_t, uint64_t>> spans) {
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end());
  uint64_t total = 0;
  uint64_t cur_begin = spans[0].first;
  uint64_t cur_end = spans[0].second;
  for (size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first > cur_end) {
      total += cur_end - cur_begin;
      cur_begin = spans[i].first;
      cur_end = spans[i].second;
    } else {
      cur_end = std::max(cur_end, spans[i].second);
    }
  }
  return total + (cur_end - cur_begin);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

std::string FormatNanos(uint64_t ns) {
  if (ns >= 1000000000ULL) {
    return StrFormat("%.2f s", static_cast<double>(ns) / 1e9);
  }
  if (ns >= 1000000ULL) {
    return StrFormat("%.2f ms", static_cast<double>(ns) / 1e6);
  }
  if (ns >= 1000ULL) {
    return StrFormat("%.2f us", static_cast<double>(ns) / 1e3);
  }
  return StrFormat("%llu ns", static_cast<unsigned long long>(ns));
}

/// Extracts the raw token after `"key":` on `line`; false when absent.
/// Quoted values lose their quotes; bare values are trimmed at , } ] or
/// end-of-line. Tolerant by construction — this is the iq_prof ingestion
/// path and must survive hand-edited or truncated dumps.
bool FindRawValue(const std::string& line, const char* key,
                  std::string* out) {
  std::string needle = StrFormat("\"%s\":", key);
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t v = pos + needle.size();
  while (v < line.size() && line[v] == ' ') ++v;
  if (v >= line.size()) return false;
  if (line[v] == '"') {
    size_t e = line.find('"', v + 1);
    if (e == std::string::npos) return false;
    *out = line.substr(v + 1, e - v - 1);
    return true;
  }
  size_t e = line.find_first_of(",}]", v);
  if (e == std::string::npos) e = line.size();
  *out = std::string(StrTrim(line.substr(v, e - v)));
  return !out->empty();
}

uint64_t FindU64(const std::string& line, const char* key) {
  std::string raw;
  if (!FindRawValue(line, key, &raw)) return 0;
  auto v = ParseInt(raw);
  return v.ok() && *v >= 0 ? static_cast<uint64_t>(*v) : 0;
}

double FindDouble(const std::string& line, const char* key) {
  std::string raw;
  if (!FindRawValue(line, key, &raw)) return 0.0;
  auto v = ParseDouble(raw);
  return v.ok() ? *v : 0.0;
}

}  // namespace

double ProfileReport::ProjectedSpeedup(int n) const {
  if (n <= 0) return 0.0;
  const double s = std::clamp(serial_fraction, 0.0, 1.0);
  return 1.0 / (s + (1.0 - s) / static_cast<double>(n));
}

ProfileReport BuildProfileReport(const std::string& label,
                                 uint64_t window_start_ns,
                                 uint64_t window_end_ns) {
  ProfileReport r;
  r.label = label;
  r.enabled = true;
  r.window_nanos =
      window_end_ns > window_start_ns ? window_end_ns - window_start_ns : 0;
  r.dropped_records = prof::DroppedRecords();

  for (const prof::MutexSiteStats& s : prof::SnapshotMutexSites()) {
    MutexSiteReport m;
    m.label = s.label != nullptr ? s.label : "(unlabeled)";
    m.rank = LockRankName(s.rank);
    m.acquisitions = s.acquisitions;
    m.contended = s.contended;
    m.wait_nanos = s.wait_nanos;
    m.max_wait_nanos = s.max_wait_nanos;
    m.held_nanos = s.held_nanos;
    r.total_wait_nanos += s.wait_nanos;
    r.mutexes.push_back(std::move(m));
  }
  std::sort(r.mutexes.begin(), r.mutexes.end(),
            [](const MutexSiteReport& a, const MutexSiteReport& b) {
              if (a.wait_nanos != b.wait_nanos) {
                return a.wait_nanos > b.wait_nanos;
              }
              return a.label < b.label;
            });

  struct SiteAccum {
    std::set<uint64_t> calls;
    std::vector<uint64_t> durations;
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    int64_t items = 0;
    uint64_t busy = 0;
    uint64_t claims = 0;
    uint64_t steals = 0;
  };
  std::map<std::string, SiteAccum> sites;
  std::vector<std::pair<uint64_t, uint64_t>> all_spans;
  for (const prof::ChunkSpan& c : prof::SnapshotChunkSpans()) {
    // Clip to the window; spans entirely outside it belong to another run.
    const uint64_t b = std::max(c.start_ns, window_start_ns);
    const uint64_t e = std::min(c.end_ns, window_end_ns);
    if (e <= b) continue;
    SiteAccum& acc = sites[c.site != nullptr ? c.site : "(unlabeled)"];
    acc.calls.insert(c.call_id);
    acc.durations.push_back(e - b);
    acc.spans.emplace_back(b, e);
    acc.items += c.items;
    acc.busy += e - b;
    acc.claims += c.claims;
    acc.steals += c.steals;
    all_spans.emplace_back(b, e);
  }
  r.coverage_nanos = UnionLength(std::move(all_spans));
  for (auto& [site, acc] : sites) {
    ParallelSiteReport p;
    p.site = site;
    p.calls = acc.calls.size();
    p.chunks = acc.durations.size();
    p.items = acc.items;
    p.busy_nanos = acc.busy;
    p.coverage_nanos = UnionLength(std::move(acc.spans));
    std::sort(acc.durations.begin(), acc.durations.end());
    p.median_chunk_nanos = acc.durations[acc.durations.size() / 2];
    p.max_chunk_nanos = acc.durations.back();
    p.imbalance = p.median_chunk_nanos > 0
                      ? static_cast<double>(p.max_chunk_nanos) /
                            static_cast<double>(p.median_chunk_nanos)
                      : 1.0;
    p.claims = acc.claims;
    p.steals = acc.steals;
    r.parallel_sites.push_back(std::move(p));
  }
  std::sort(r.parallel_sites.begin(), r.parallel_sites.end(),
            [](const ParallelSiteReport& a, const ParallelSiteReport& b) {
              if (a.busy_nanos != b.busy_nanos) {
                return a.busy_nanos > b.busy_nanos;
              }
              return a.site < b.site;
            });
  r.serial_fraction =
      r.window_nanos > 0
          ? std::clamp(1.0 - static_cast<double>(r.coverage_nanos) /
                                 static_cast<double>(r.window_nanos),
                       0.0, 1.0)
          : 1.0;

  std::map<uint32_t, std::vector<prof::WorkerEvent>> by_worker;
  for (const prof::WorkerEvent& e : prof::SnapshotWorkerEvents()) {
    by_worker[e.worker].push_back(e);
  }
  for (auto& [id, events] : by_worker) {
    std::sort(events.begin(), events.end(),
              [](const prof::WorkerEvent& a, const prof::WorkerEvent& b) {
                return a.t_ns < b.t_ns;
              });
    WorkerReport w;
    w.worker = id;
    for (size_t i = 0; i < events.size(); ++i) {
      const uint64_t b = std::max(events[i].t_ns, window_start_ns);
      const uint64_t e = std::min(
          i + 1 < events.size() ? events[i + 1].t_ns : window_end_ns,
          window_end_ns);
      if (e <= b) continue;
      if (events[i].state == prof::WorkerState::kRunning) {
        w.running_nanos += e - b;
      } else {
        w.idle_nanos += e - b;
      }
    }
    r.workers.push_back(w);
  }
  return r;
}

std::string ProfileReport::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"profile_label\": \"%s\",\n",
                   JsonEscape(label).c_str());
  out += StrFormat("  \"enabled\": %s,\n", enabled ? "true" : "false");
  out += StrFormat("  \"window_nanos\": %llu,\n",
                   static_cast<unsigned long long>(window_nanos));
  out += StrFormat("  \"coverage_nanos\": %llu,\n",
                   static_cast<unsigned long long>(coverage_nanos));
  out += StrFormat("  \"serial_fraction\": %.6f,\n", serial_fraction);
  out += StrFormat("  \"total_wait_nanos\": %llu,\n",
                   static_cast<unsigned long long>(total_wait_nanos));
  out += StrFormat("  \"dropped_records\": %llu,\n",
                   static_cast<unsigned long long>(dropped_records));
  for (int n : {2, 4, 8, 16}) {
    out += StrFormat("  \"projected_speedup_%d\": %.3f,\n", n,
                     ProjectedSpeedup(n));
  }
  out += "  \"mutexes\": [";
  for (size_t i = 0; i < mutexes.size(); ++i) {
    const MutexSiteReport& m = mutexes[i];
    out += StrFormat(
        "%s\n    {\"mutex\": \"%s\", \"rank\": \"%s\", \"acquisitions\": "
        "%llu, \"contended\": %llu, \"wait_nanos\": %llu, "
        "\"max_wait_nanos\": %llu, \"held_nanos\": %llu}",
        i == 0 ? "" : ",", JsonEscape(m.label).c_str(),
        JsonEscape(m.rank).c_str(),
        static_cast<unsigned long long>(m.acquisitions),
        static_cast<unsigned long long>(m.contended),
        static_cast<unsigned long long>(m.wait_nanos),
        static_cast<unsigned long long>(m.max_wait_nanos),
        static_cast<unsigned long long>(m.held_nanos));
  }
  out += mutexes.empty() ? "],\n" : "\n  ],\n";
  out += "  \"parallel_sites\": [";
  for (size_t i = 0; i < parallel_sites.size(); ++i) {
    const ParallelSiteReport& p = parallel_sites[i];
    out += StrFormat(
        "%s\n    {\"site\": \"%s\", \"calls\": %llu, \"chunks\": %llu, "
        "\"items\": %lld, \"busy_nanos\": %llu, \"site_coverage_nanos\": "
        "%llu, \"median_chunk_nanos\": %llu, \"max_chunk_nanos\": %llu, "
        "\"imbalance\": %.3f, \"claims\": %llu, \"steals\": %llu}",
        i == 0 ? "" : ",", JsonEscape(p.site).c_str(),
        static_cast<unsigned long long>(p.calls),
        static_cast<unsigned long long>(p.chunks),
        static_cast<long long>(p.items),
        static_cast<unsigned long long>(p.busy_nanos),
        static_cast<unsigned long long>(p.coverage_nanos),
        static_cast<unsigned long long>(p.median_chunk_nanos),
        static_cast<unsigned long long>(p.max_chunk_nanos), p.imbalance,
        static_cast<unsigned long long>(p.claims),
        static_cast<unsigned long long>(p.steals));
  }
  out += parallel_sites.empty() ? "],\n" : "\n  ],\n";
  out += "  \"workers\": [";
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerReport& w = workers[i];
    out += StrFormat(
        "%s\n    {\"worker\": %u, \"running_nanos\": %llu, "
        "\"idle_nanos\": %llu}",
        i == 0 ? "" : ",", w.worker,
        static_cast<unsigned long long>(w.running_nanos),
        static_cast<unsigned long long>(w.idle_nanos));
  }
  out += workers.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void ProfileSession::Start() {
  prof::SetEnabled(false);
  prof::Reset();
  prof::SetEnabled(true);
  start_ns_ = prof::EnabledSinceNanos();
  active_ = true;
}

ProfileReport ProfileSession::Stop(const std::string& label) {
  const uint64_t end_ns = prof::NowNanos();
  prof::SetEnabled(false);
  active_ = false;
  return BuildProfileReport(label, start_ns_, end_ns);
}

std::string CurrentProfileJson() {
  if (!prof::Enabled()) {
    ProfileReport r;
    r.label = "live";
    r.enabled = false;
    return r.ToJson();
  }
  return BuildProfileReport("live", prof::EnabledSinceNanos(),
                            prof::NowNanos())
      .ToJson();
}

std::string ChromeTraceJson() {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const prof::ChunkSpan& c : prof::SnapshotChunkSpans()) {
    out += StrFormat(
        "%s\n{\"name\": \"%s\", \"cat\": \"parallel_for\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
        "\"args\": {\"items\": %lld, \"call\": %llu}}",
        first ? "" : ",",
        JsonEscape(c.site != nullptr ? c.site : "(unlabeled)").c_str(),
        c.worker, static_cast<double>(c.start_ns) / 1e3,
        static_cast<double>(c.end_ns - c.start_ns) / 1e3,
        static_cast<long long>(c.items),
        static_cast<unsigned long long>(c.call_id));
    first = false;
  }
  out += "\n]}\n";
  return out;
}

void PublishProfileMetrics(const ProfileReport& report) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::map<std::string, uint64_t> wait_by_rank;
  for (const MutexSiteReport& m : report.mutexes) {
    wait_by_rank[m.rank] += m.wait_nanos;
  }
  for (const auto& [rank, wait] : wait_by_rank) {
    reg.GetGauge(StrFormat("iq.lock.wait_nanos{rank=%s}", rank.c_str()))
        ->Set(static_cast<int64_t>(wait));
  }
  for (const ParallelSiteReport& p : report.parallel_sites) {
    reg.GetGauge(
           StrFormat("iq.pool.chunk_imbalance{site=%s}", p.site.c_str()))
        ->Set(static_cast<int64_t>(std::llround(p.imbalance * 1000.0)));
  }
}

std::vector<ProfileReport> ParseProfileReports(const std::string& text) {
  std::vector<ProfileReport> reports;
  ProfileReport* cur = nullptr;
  std::string raw;
  for (std::string_view line_view : StrSplit(text, '\n')) {
    const std::string line(line_view);
    if (FindRawValue(line, "profile_label", &raw)) {
      reports.emplace_back();
      cur = &reports.back();
      cur->label = raw;
      cur->serial_fraction = 1.0;
      continue;
    }
    if (cur == nullptr) continue;
    if (FindRawValue(line, "mutex", &raw)) {
      MutexSiteReport m;
      m.label = raw;
      if (FindRawValue(line, "rank", &raw)) m.rank = raw;
      m.acquisitions = FindU64(line, "acquisitions");
      m.contended = FindU64(line, "contended");
      m.wait_nanos = FindU64(line, "wait_nanos");
      m.max_wait_nanos = FindU64(line, "max_wait_nanos");
      m.held_nanos = FindU64(line, "held_nanos");
      cur->mutexes.push_back(std::move(m));
      continue;
    }
    if (FindRawValue(line, "site", &raw)) {
      ParallelSiteReport p;
      p.site = raw;
      p.calls = FindU64(line, "calls");
      p.chunks = FindU64(line, "chunks");
      p.items = static_cast<int64_t>(FindU64(line, "items"));
      p.busy_nanos = FindU64(line, "busy_nanos");
      p.coverage_nanos = FindU64(line, "site_coverage_nanos");
      p.median_chunk_nanos = FindU64(line, "median_chunk_nanos");
      p.max_chunk_nanos = FindU64(line, "max_chunk_nanos");
      p.imbalance = FindDouble(line, "imbalance");
      p.claims = FindU64(line, "claims");
      p.steals = FindU64(line, "steals");
      cur->parallel_sites.push_back(std::move(p));
      continue;
    }
    if (FindRawValue(line, "worker", &raw)) {
      WorkerReport w;
      auto id = ParseInt(raw);
      w.worker = id.ok() && *id >= 0 ? static_cast<uint32_t>(*id) : 0;
      w.running_nanos = FindU64(line, "running_nanos");
      w.idle_nanos = FindU64(line, "idle_nanos");
      cur->workers.push_back(w);
      continue;
    }
    if (FindRawValue(line, "enabled", &raw)) cur->enabled = raw == "true";
    if (line.find("\"window_nanos\":") != std::string::npos) {
      cur->window_nanos = FindU64(line, "window_nanos");
    }
    if (line.find("\"coverage_nanos\":") != std::string::npos &&
        line.find("site_coverage") == std::string::npos) {
      cur->coverage_nanos = FindU64(line, "coverage_nanos");
    }
    if (line.find("\"serial_fraction\":") != std::string::npos) {
      cur->serial_fraction = FindDouble(line, "serial_fraction");
    }
    if (line.find("\"total_wait_nanos\":") != std::string::npos) {
      cur->total_wait_nanos = FindU64(line, "total_wait_nanos");
    }
    if (line.find("\"dropped_records\":") != std::string::npos) {
      cur->dropped_records = FindU64(line, "dropped_records");
    }
  }
  return reports;
}

std::string ProfileVerdict(const ProfileReport& r) {
  if (!r.enabled || r.window_nanos == 0) {
    return "no profile data captured (profiling disabled or empty window)";
  }
  const double window = static_cast<double>(r.window_nanos);
  const double wait_share =
      static_cast<double>(r.total_wait_nanos) / window;
  if (wait_share >= 0.05 && !r.mutexes.empty()) {
    const MutexSiteReport& top = r.mutexes.front();
    return StrFormat(
        "lock contention dominates: %s (rank %s) waited %s across %llu "
        "acquisitions — %.1f%% of the window blocked on locks",
        top.label.c_str(), top.rank.c_str(),
        FormatNanos(top.wait_nanos).c_str(),
        static_cast<unsigned long long>(top.acquisitions),
        100.0 * wait_share);
  }
  const ParallelSiteReport* worst_imbalance = nullptr;
  for (const ParallelSiteReport& p : r.parallel_sites) {
    if (p.chunks >= 4 &&
        static_cast<double>(p.coverage_nanos) / window >= 0.2 &&
        (worst_imbalance == nullptr ||
         p.imbalance > worst_imbalance->imbalance)) {
      worst_imbalance = &p;
    }
  }
  if (worst_imbalance != nullptr && worst_imbalance->imbalance >= 2.0) {
    return StrFormat(
        "chunk imbalance at %s: max/median chunk duration %.2f — one "
        "straggler chunk serializes the tail of each call",
        worst_imbalance->site.c_str(), worst_imbalance->imbalance);
  }
  if (r.serial_fraction >= 0.25) {
    const char* biggest = r.parallel_sites.empty()
                              ? "(none)"
                              : r.parallel_sites.front().site.c_str();
    return StrFormat(
        "serial fraction %.2f is the ceiling: parallel regions cover only "
        "%.1f%% of the window (largest: %s), capping speedup at x%.2f on 8 "
        "threads regardless of contention",
        r.serial_fraction, 100.0 * (1.0 - r.serial_fraction), biggest,
        r.ProjectedSpeedup(8));
  }
  return StrFormat(
      "no dominant serialization: parallel coverage %.1f%% of the window, "
      "lock wait %.2f%%",
      100.0 * (1.0 - r.serial_fraction), 100.0 * wait_share);
}

std::string FormatSerializationReport(
    const std::vector<ProfileReport>& reports, int top_n) {
  if (reports.empty()) return "iq_prof: no profiles found in input\n";
  std::string out =
      StrFormat("iq_prof serialization report — %zu profile%s\n",
                reports.size(), reports.size() == 1 ? "" : "s");
  for (const ProfileReport& r : reports) {
    out += StrFormat(
        "\nprofile %s: window %s, parallel coverage %.1f%% "
        "(serial fraction %.3f)%s\n",
        r.label.c_str(), FormatNanos(r.window_nanos).c_str(),
        100.0 * (1.0 - r.serial_fraction), r.serial_fraction,
        r.dropped_records > 0
            ? StrFormat(" [TRUNCATED: %llu records dropped]",
                        static_cast<unsigned long long>(r.dropped_records))
                  .c_str()
            : "");
    out += StrFormat(
        "  projected speedup (Amdahl): x%.2f @2  x%.2f @4  x%.2f @8  "
        "x%.2f @16\n",
        r.ProjectedSpeedup(2), r.ProjectedSpeedup(4), r.ProjectedSpeedup(8),
        r.ProjectedSpeedup(16));
    if (!r.mutexes.empty()) {
      out += "  top mutexes by wait:\n";
      int shown = 0;
      for (const MutexSiteReport& m : r.mutexes) {
        if (shown++ >= top_n) break;
        out += StrFormat(
            "    %d. %-28s (%s)  wait %s / %llu acq (%llu contended, "
            "max %s), held %s\n",
            shown, m.label.c_str(), m.rank.c_str(),
            FormatNanos(m.wait_nanos).c_str(),
            static_cast<unsigned long long>(m.acquisitions),
            static_cast<unsigned long long>(m.contended),
            FormatNanos(m.max_wait_nanos).c_str(),
            FormatNanos(m.held_nanos).c_str());
      }
    }
    if (!r.parallel_sites.empty()) {
      out += "  parallel sites:\n";
      int shown = 0;
      for (const ParallelSiteReport& p : r.parallel_sites) {
        if (shown++ >= top_n) break;
        out += StrFormat(
            "    %-28s %llu calls / %llu chunks / %lld items, busy %s, "
            "imbalance %.2f (max %s / med %s)%s\n",
            p.site.c_str(), static_cast<unsigned long long>(p.calls),
            static_cast<unsigned long long>(p.chunks),
            static_cast<long long>(p.items),
            FormatNanos(p.busy_nanos).c_str(), p.imbalance,
            FormatNanos(p.max_chunk_nanos).c_str(),
            FormatNanos(p.median_chunk_nanos).c_str(),
            p.steals > 0
                ? StrFormat(", %llu/%llu claims stolen",
                            static_cast<unsigned long long>(p.steals),
                            static_cast<unsigned long long>(p.claims))
                      .c_str()
                : "");
      }
    }
    if (!r.workers.empty()) {
      uint64_t running = 0;
      uint64_t idle = 0;
      for (const WorkerReport& w : r.workers) {
        running += w.running_nanos;
        idle += w.idle_nanos;
      }
      const double denom = static_cast<double>(running + idle);
      out += StrFormat(
          "  pool workers: %zu, busy %.1f%% / idle %.1f%% of tracked time\n",
          r.workers.size(), denom > 0 ? 100.0 * running / denom : 0.0,
          denom > 0 ? 100.0 * idle / denom : 0.0);
    }
  }
  out += StrFormat("\nverdict: %s\n", ProfileVerdict(reports.back()).c_str());
  return out;
}

std::string SerializationReportJson(
    const std::vector<ProfileReport>& reports) {
  std::string out = "{\"iq_prof\": {\n";
  out += StrFormat("\"num_profiles\": %zu,\n", reports.size());
  const std::string verdict = reports.empty()
                                  ? "no profiles found in input"
                                  : ProfileVerdict(reports.back());
  out += StrFormat("\"verdict\": \"%s\",\n", JsonEscape(verdict).c_str());
  out += "\"profiles\": [";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += reports[i].ToJson();
  }
  out += reports.empty() ? "]\n" : "\n]\n";
  out += "}}\n";
  return out;
}

}  // namespace iq
