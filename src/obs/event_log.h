#ifndef IQ_OBS_EVENT_LOG_H_
#define IQ_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace iq {

/// Structured event log / flight recorder (DESIGN.md §9). Where the metrics
/// registry answers "how much, in aggregate", the event log answers "what
/// just happened, in order": a fixed-capacity ring of typed events that the
/// engine's instrumented paths append to on every improvement-query solve,
/// strategy application, index (re)build and pool-saturation episode. The
/// ring always holds the most recent window, so a post-mortem JSONL dump
/// after an error shows the run-up to it, not the start of the process.
///
/// Concurrency: the ring is striped — each stripe has its own mutex and each
/// recording thread hashes to one stripe — so SolveBatch workers appending
/// concurrently contend only within a stripe, never globally. Events carry a
/// global sequence number; snapshots merge the stripes back into recording
/// order.

enum class EventType : uint8_t {
  kSolveStart = 0,
  kSolveEnd,
  kApplyStrategy,
  kIndexBuild,
  kIndexMaintenance,
  kPoolSaturation,
  kError,
};

/// "solve_start", "solve_end", ... (the JSONL `type` field).
const char* EventTypeName(EventType type);

/// One recorded event. A flat union of every event kind's fields: each kind
/// fills the subset that applies (see the per-kind factory helpers below)
/// and the JSONL rendering emits only that subset. `op` and `scheme` must be
/// string literals or other static-duration strings — the log stores the
/// pointer; `note` is copied.
struct Event {
  EventType type = EventType::kError;
  /// Global recording order (assigned by Record).
  uint64_t seq = 0;
  /// TraceNowNanos() at Record time (same clock as the trace rings).
  uint64_t t_ns = 0;

  const char* op = nullptr;      // "MinCost", "Build", "OnObjectRemoved", ...
  const char* scheme = nullptr;  // IqSchemeName(...) for solve events
  int target = -1;               // object / query id the event concerns
  int tau = 0;                   // solve_start (Min-Cost goal)
  double beta = 0.0;             // solve_start (Max-Hit budget)
  bool ok = true;                // solve_end / apply / maintenance outcome
  double cost = 0.0;             // solve_end
  int hits_before = 0;           // solve_end / apply
  int hits_after = 0;            // solve_end / apply
  int iterations = 0;            // solve_end (EvalBreakdown)
  uint64_t candidates_generated = 0;  // solve_end (EvalBreakdown)
  uint64_t candidates_evaluated = 0;  // solve_end (EvalBreakdown)
  uint64_t queries_rescored = 0;  // solve_end breakdown / apply re-ranks
  uint64_t queries_reused = 0;    // solve_end breakdown / apply reuse
  double seconds = 0.0;           // wall time of the operation
  int num_queries = 0;            // index_build
  int num_subdomains = 0;         // index_build
  int64_t n = 0;                  // generic size: batch items, work units
  int num_threads = 0;            // pool_saturation
  /// Index epoch the event concerns (DESIGN.md §12): the pinned epoch of a
  /// solve, the epoch an IndexBuild produced, or the epoch a maintenance
  /// hook was building. 0 = pre-epoch / standalone index.
  uint64_t epoch = 0;             // solve_* / index_build / index_maintenance
  /// Causal trace id of the solve this event belongs to (DESIGN.md §14), so
  /// a flight-recorder line cross-references its /tracez trace. 0 = tracing
  /// off / event outside any root span; emitted only when nonzero, keeping
  /// dumps from untraced runs byte-stable.
  uint64_t trace_id = 0;          // solve_* / apply_strategy / error
  /// Free-form detail (error messages); copied, JSON-escaped on dump.
  std::string note;

  /// One-line JSON object (no trailing newline), e.g.
  ///   {"seq":7,"t_ns":123,"type":"solve_end","op":"MinCost",...}
  std::string ToJson() const;
};

class EventLog {
 public:
  /// Total retained events across all stripes.
  static constexpr size_t kCapacity = 4096;
  static constexpr size_t kStripes = 8;
  static constexpr size_t kStripeCapacity = kCapacity / kStripes;

  static EventLog& Global();

  /// Appends `e` (stamping seq and t_ns) to the calling thread's stripe.
  /// Constant-time; overwrites the stripe's oldest event when full.
  void Record(Event e);

  /// All retained events, merged across stripes into seq order.
  std::vector<Event> Snapshot() const;

  /// One ToJson() line per retained event, seq order, trailing newline.
  std::string ToJsonl() const;
  /// ToJsonl() written to `path`.
  Status WriteJsonl(const std::string& path) const;

  /// Drops all retained events (counters keep running).
  void Clear();

  /// Events ever recorded / overwritten-before-snapshot since process start
  /// (Clear() drops the retained window, not these totals — they let a dump
  /// reader see how much history the ring could not keep).
  uint64_t recorded_count() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_count() const;

  // ---- factory helpers (fill the per-kind field subset) ----
  static Event SolveStart(const char* op, const char* scheme, int target,
                          int tau, double beta, uint64_t epoch = 0);
  static Event SolveEnd(const char* op, const char* scheme, int target,
                        bool ok, double cost, int hits_before, int hits_after,
                        int iterations, uint64_t candidates_generated,
                        uint64_t candidates_evaluated,
                        uint64_t queries_rescored, uint64_t queries_reused,
                        double seconds, uint64_t epoch = 0);
  static Event ApplyStrategy(int target, bool ok, uint64_t queries_reranked,
                             uint64_t queries_reused, int64_t affected,
                             double seconds, uint64_t epoch = 0);
  static Event IndexBuild(int num_queries, int num_subdomains, double seconds,
                          uint64_t epoch = 0);
  static Event IndexMaintenance(const char* op, int id, bool ok,
                                uint64_t epoch = 0);
  static Event PoolSaturation(const char* op, int64_t work_units,
                              int num_threads);
  static Event Error(const char* op, std::string note);

 private:
  struct Stripe {
    /// All stripes share LockRank::kEventLogStripe: the log holds at most
    /// one stripe lock at a time (Record touches one stripe; Snapshot and
    /// Clear visit stripes strictly sequentially).
    mutable Mutex mu{LockRank::kEventLogStripe, "EventLog::stripe"};
    /// Ring storage; grows to kStripeCapacity then wraps.
    std::vector<Event> ring IQ_GUARDED_BY(mu);
    /// Events ever recorded into this stripe; `next % kStripeCapacity` is
    /// the overwrite cursor.
    uint64_t next IQ_GUARDED_BY(mu) = 0;
  };

  EventLog() = default;

  Stripe& StripeForThisThread();

  Stripe stripes_[kStripes];
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> recorded_{0};
};

}  // namespace iq

#endif  // IQ_OBS_EVENT_LOG_H_
