#include "obs/trace_analysis.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace iq {
namespace {

/// Extracts the raw token after `"key":` on `line`; false when absent.
/// Same tolerant scanner as the iq_prof ingestion path — it must survive
/// hand-edited or truncated dumps.
bool FindRawValue(const std::string& line, const char* key,
                  std::string* out) {
  std::string needle = StrFormat("\"%s\":", key);
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t v = pos + needle.size();
  while (v < line.size() && line[v] == ' ') ++v;
  if (v >= line.size()) return false;
  if (line[v] == '"') {
    size_t e = line.find('"', v + 1);
    if (e == std::string::npos) return false;
    *out = line.substr(v + 1, e - v - 1);
    return true;
  }
  size_t e = line.find_first_of(",}]", v);
  if (e == std::string::npos) e = line.size();
  *out = std::string(StrTrim(line.substr(v, e - v)));
  return !out->empty();
}

uint64_t FindU64(const std::string& line, const char* key) {
  std::string raw;
  if (!FindRawValue(line, key, &raw)) return 0;
  auto v = ParseInt(raw);
  return v.ok() && *v >= 0 ? static_cast<uint64_t>(*v) : 0;
}

int64_t FindI64(const std::string& line, const char* key, int64_t dflt) {
  std::string raw;
  if (!FindRawValue(line, key, &raw)) return dflt;
  auto v = ParseInt(raw);
  return v.ok() ? *v : dflt;
}

std::string FormatNanos(uint64_t ns) {
  if (ns >= 1000000000ULL) {
    return StrFormat("%.2f s", static_cast<double>(ns) / 1e9);
  }
  if (ns >= 1000000ULL) {
    return StrFormat("%.2f ms", static_cast<double>(ns) / 1e6);
  }
  if (ns >= 1000ULL) {
    return StrFormat("%.2f us", static_cast<double>(ns) / 1e3);
  }
  return StrFormat("%llu ns", static_cast<unsigned long long>(ns));
}

}  // namespace

TraceDump ParseTracezDump(const std::string& text) {
  TraceDump dump;
  ParsedTrace* cur = nullptr;
  std::string raw;
  for (std::string_view line_view : StrSplit(text, '\n')) {
    const std::string line(line_view);
    if (line.find("\"config\":") != std::string::npos) {
      dump.config.slow_trace_nanos = FindI64(line, "slow_trace_nanos", 0);
      dump.config.keep_first_n =
          static_cast<int>(FindI64(line, "keep_first_n", 0));
      dump.config.max_retained = FindU64(line, "max_retained");
      continue;
    }
    if (line.find("\"counters\":") != std::string::npos) {
      dump.dropped = FindU64(line, "dropped");
      dump.slow_retained = FindU64(line, "slow_retained");
      dump.discarded = FindU64(line, "discarded");
      continue;
    }
    if (line.find("\"trace_summary\":") != std::string::npos) {
      dump.traces.emplace_back();
      cur = &dump.traces.back();
      cur->trace_id = FindU64(line, "trace_id");
      if (FindRawValue(line, "op", &raw)) cur->op = raw;
      cur->start_ns = FindU64(line, "start_ns");
      cur->dur_ns = FindU64(line, "dur_ns");
      if (FindRawValue(line, "erred", &raw)) cur->erred = raw == "true";
      if (FindRawValue(line, "warmup", &raw)) cur->warmup = raw == "true";
      cur->num_threads = static_cast<int>(FindU64(line, "num_threads"));
      continue;
    }
    if (cur != nullptr && line.find("\"span\":") != std::string::npos) {
      ParsedSpan s;
      s.trace_id = FindU64(line, "trace_id");
      s.span_id = FindU64(line, "span_id");
      s.parent_span_id = FindU64(line, "parent_span_id");
      if (FindRawValue(line, "name", &raw)) s.name = raw;
      s.tid = static_cast<int>(FindU64(line, "tid"));
      s.start_ns = FindU64(line, "start_ns");
      s.dur_ns = FindU64(line, "dur_ns");
      s.arg0 = FindI64(line, "arg0", TraceEvent::kNoArg);
      s.arg1 = FindI64(line, "arg1", TraceEvent::kNoArg);
      cur->spans.push_back(std::move(s));
    }
  }
  return dump;
}

TraceAnalysis AnalyzeTrace(const ParsedTrace& trace) {
  TraceAnalysis a;
  a.trace_id = trace.trace_id;
  a.op = trace.op;
  a.dur_ns = trace.dur_ns;
  a.erred = trace.erred;
  a.num_threads = trace.num_threads;
  a.num_spans = trace.spans.size();

  std::map<uint64_t, const ParsedSpan*> by_id;
  std::map<uint64_t, std::vector<const ParsedSpan*>> children;
  const ParsedSpan* root = nullptr;
  for (const ParsedSpan& s : trace.spans) {
    by_id[s.span_id] = &s;
    children[s.parent_span_id].push_back(&s);
    if (s.parent_span_id == 0 && root == nullptr) root = &s;
  }

  // Per-name self time: duration minus the direct children's durations
  // (clamped — timestamps come from different threads' interleaved reads of
  // one steady clock, so a child can overrun its parent by a few ns).
  std::map<std::string, SelfTimeRollup> rollup;
  for (const ParsedSpan& s : trace.spans) {
    uint64_t child_ns = 0;
    auto it = children.find(s.span_id);
    if (it != children.end()) {
      for (const ParsedSpan* c : it->second) child_ns += c->dur_ns;
    }
    SelfTimeRollup& r = rollup[s.name];
    r.name = s.name;
    r.self_ns += s.dur_ns > child_ns ? s.dur_ns - child_ns : 0;
    ++r.spans;
  }
  for (auto& [name, r] : rollup) a.self_time.push_back(std::move(r));
  std::sort(a.self_time.begin(), a.self_time.end(),
            [](const SelfTimeRollup& x, const SelfTimeRollup& y) {
              return x.self_ns != y.self_ns ? x.self_ns > y.self_ns
                                            : x.name < y.name;
            });

  if (root == nullptr) return a;  // orphaned trace: rings lost the root

  // Critical path: from the root, descend into the child whose interval
  // ends last — the child the parent actually waited for. Self time per
  // step is the parent's duration minus that child's; the telescoping sum
  // plus the leaf's full duration reconstructs the root's wall clock.
  const ParsedSpan* cur = root;
  while (cur != nullptr) {
    const ParsedSpan* next = nullptr;
    auto it = children.find(cur->span_id);
    if (it != children.end()) {
      for (const ParsedSpan* c : it->second) {
        if (next == nullptr ||
            c->start_ns + c->dur_ns > next->start_ns + next->dur_ns) {
          next = c;
        }
      }
    }
    CriticalPathStep step;
    step.name = cur->name;
    step.span_id = cur->span_id;
    step.tid = cur->tid;
    step.dur_ns = cur->dur_ns;
    const uint64_t child_dur = next != nullptr ? next->dur_ns : 0;
    step.self_ns = cur->dur_ns > child_dur ? cur->dur_ns - child_dur : 0;
    a.accounted_ns += step.self_ns;
    a.critical_path.push_back(std::move(step));
    cur = next;
  }
  a.accounted_fraction =
      a.dur_ns > 0
          ? static_cast<double>(a.accounted_ns) / static_cast<double>(a.dur_ns)
          : 0.0;
  return a;
}

std::string TraceVerdict(const TraceAnalysis& a) {
  if (a.critical_path.empty()) {
    return StrFormat(
        "trace %llu has no root span — the scratch rings overwrote it "
        "before retention (iq.trace.dropped); raise the ring capacity or "
        "lower span volume",
        static_cast<unsigned long long>(a.trace_id));
  }
  const CriticalPathStep* hot = &a.critical_path.front();
  for (const CriticalPathStep& s : a.critical_path) {
    if (s.self_ns > hot->self_ns) hot = &s;
  }
  const double share =
      a.dur_ns > 0 ? 100.0 * static_cast<double>(hot->self_ns) /
                         static_cast<double>(a.dur_ns)
                   : 0.0;
  if (a.erred) {
    return StrFormat(
        "trace %llu was retained for an error; before failing it spent "
        "%.1f%% of %s in %s",
        static_cast<unsigned long long>(a.trace_id), share,
        FormatNanos(a.dur_ns).c_str(), hot->name.c_str());
  }
  return StrFormat(
      "trace %llu (%s, %s over %d thread%s): %.1f%% of the wall clock is "
      "self time in %s on the critical path",
      static_cast<unsigned long long>(a.trace_id), a.op.c_str(),
      FormatNanos(a.dur_ns).c_str(), a.num_threads,
      a.num_threads == 1 ? "" : "s", share, hot->name.c_str());
}

std::string FormatTraceReport(const TraceDump& dump, int top_n) {
  std::string out = StrFormat(
      "iq_trace: %zu retained trace(s); slow_trace_nanos=%lld "
      "keep_first_n=%d max_retained=%zu\n"
      "counters: dropped=%llu slow_retained=%llu discarded=%llu\n",
      dump.traces.size(),
      static_cast<long long>(dump.config.slow_trace_nanos),
      dump.config.keep_first_n, dump.config.max_retained,
      static_cast<unsigned long long>(dump.dropped),
      static_cast<unsigned long long>(dump.slow_retained),
      static_cast<unsigned long long>(dump.discarded));
  for (const ParsedTrace& t : dump.traces) {
    const TraceAnalysis a = AnalyzeTrace(t);
    out += StrFormat(
        "\ntrace %llu  %s  %s  spans=%zu threads=%d%s%s\n",
        static_cast<unsigned long long>(a.trace_id), a.op.c_str(),
        FormatNanos(a.dur_ns).c_str(), a.num_spans, a.num_threads,
        a.erred ? "  [erred]" : "", t.warmup ? "  [warmup]" : "");
    out += StrFormat("  critical path (%.1f%% of wall accounted):\n",
                     100.0 * a.accounted_fraction);
    for (const CriticalPathStep& s : a.critical_path) {
      out += StrFormat("    %-40s self %-10s tid %d\n", s.name.c_str(),
                       FormatNanos(s.self_ns).c_str(), s.tid);
    }
    out += "  top self-time by span name:\n";
    int shown = 0;
    for (const SelfTimeRollup& r : a.self_time) {
      if (shown++ >= top_n) break;
      out += StrFormat("    %-40s %-10s (%llu span%s)\n", r.name.c_str(),
                       FormatNanos(r.self_ns).c_str(),
                       static_cast<unsigned long long>(r.spans),
                       r.spans == 1 ? "" : "s");
    }
    out += StrFormat("  verdict: %s\n", TraceVerdict(a).c_str());
  }
  if (dump.traces.empty()) {
    out +=
        "\nno retained traces: nothing erred or cleared the slow-trace "
        "threshold (see \"discarded\" above for how many solves ran)\n";
  }
  return out;
}

std::string TraceReportJson(const TraceDump& dump) {
  std::string out = "{\"iq_trace\": {\n";
  out += StrFormat("\"num_traces\": %zu,\n", dump.traces.size());
  out += StrFormat(
      "\"counters\": {\"dropped\": %llu, \"slow_retained\": %llu, "
      "\"discarded\": %llu},\n",
      static_cast<unsigned long long>(dump.dropped),
      static_cast<unsigned long long>(dump.slow_retained),
      static_cast<unsigned long long>(dump.discarded));
  std::string verdict = dump.traces.empty()
                            ? "no retained traces"
                            : TraceVerdict(AnalyzeTrace(dump.traces.back()));
  // JsonEscape is overkill here: verdicts are built from span names, which
  // are static identifiers without quotes or backslashes.
  out += StrFormat("\"verdict\": \"%s\",\n", verdict.c_str());
  out += "\"traces\": [";
  bool first_trace = true;
  for (const ParsedTrace& t : dump.traces) {
    const TraceAnalysis a = AnalyzeTrace(t);
    out += StrFormat(
        "%s\n{\"trace_analysis\": {\"trace_id\": %llu, \"op\": \"%s\", "
        "\"dur_ns\": %llu, \"erred\": %s, \"num_spans\": %zu, "
        "\"num_threads\": %d, \"accounted_ns\": %llu, "
        "\"accounted_fraction\": %.4f}}",
        first_trace ? "" : ",", static_cast<unsigned long long>(a.trace_id),
        a.op.c_str(), static_cast<unsigned long long>(a.dur_ns),
        a.erred ? "true" : "false", a.num_spans, a.num_threads,
        static_cast<unsigned long long>(a.accounted_ns),
        a.accounted_fraction);
    first_trace = false;
    for (const CriticalPathStep& s : a.critical_path) {
      out += StrFormat(
          ",\n{\"path_step\": {\"trace_id\": %llu, \"name\": \"%s\", "
          "\"span_id\": %llu, \"tid\": %d, \"dur_ns\": %llu, "
          "\"self_ns\": %llu}}",
          static_cast<unsigned long long>(a.trace_id), s.name.c_str(),
          static_cast<unsigned long long>(s.span_id), s.tid,
          static_cast<unsigned long long>(s.dur_ns),
          static_cast<unsigned long long>(s.self_ns));
    }
    for (const SelfTimeRollup& r : a.self_time) {
      out += StrFormat(
          ",\n{\"self_time\": {\"trace_id\": %llu, \"name\": \"%s\", "
          "\"self_ns\": %llu, \"spans\": %llu}}",
          static_cast<unsigned long long>(a.trace_id), r.name.c_str(),
          static_cast<unsigned long long>(r.self_ns),
          static_cast<unsigned long long>(r.spans));
    }
  }
  out += "\n]\n}}\n";
  return out;
}

}  // namespace iq
