#include "obs/metrics.h"

#include <bit>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace iq {
namespace {

/// Bridges ThreadPool's layering-safe observer hook into the registry:
/// util/ may not depend on obs/, so the pool publishes one callback per
/// executed task and this always-linked TU turns it into iq.pool.* metrics.
struct PoolMetricsBridge {
  PoolMetricsBridge() {
    ThreadPool::SetTaskObserver(+[](uint64_t queue_wait_nanos) {
      struct Cached {
        Counter* tasks;
        Histogram* queue_wait;
      };
      static Cached c = [] {
        MetricsRegistry& reg = MetricsRegistry::Global();
        return Cached{reg.GetCounter("iq.pool.tasks"),
                      reg.GetHistogram("iq.pool.queue_wait_nanos")};
      }();
      c.tasks->Increment();
      c.queue_wait->Record(queue_wait_nanos);
    });
  }
};
const PoolMetricsBridge g_pool_metrics_bridge;

}  // namespace

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  int idx = std::bit_width(v);  // v in [2^(idx-1), 2^idx)
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

double HistogramSnapshot::Mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  double target = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    uint64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      double hi = static_cast<double>(Histogram::BucketLowerBound(i + 1));
      double frac = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(
      Histogram::BucketLowerBound(static_cast<int>(buckets.size())));
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  size_t width = 0;
  for (const auto& [n, v] : counters) width = std::max(width, n.size());
  for (const auto& [n, v] : gauges) width = std::max(width, n.size());
  for (const HistogramSnapshot& h : histograms) {
    width = std::max(width, h.name.size());
  }
  std::string out;
  for (const auto& [n, v] : counters) {
    out += StrFormat("%-*s  %llu\n", static_cast<int>(width), n.c_str(),
                     static_cast<unsigned long long>(v));
  }
  for (const auto& [n, v] : gauges) {
    out += StrFormat("%-*s  %lld\n", static_cast<int>(width), n.c_str(),
                     static_cast<long long>(v));
  }
  for (const HistogramSnapshot& h : histograms) {
    out += StrFormat(
        "%-*s  count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f\n",
        static_cast<int>(width), h.name.c_str(),
        static_cast<unsigned long long>(h.count), h.Mean(), h.Percentile(50),
        h.Percentile(95), h.Percentile(99));
  }
  return out;
}

namespace {

/// Minimal JSON string escaping (metric names are plain identifiers, but be
/// defensive about quotes and backslashes anyway).
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [n, v] : counters) {
    out += StrFormat("%s\n    %s: %llu", first ? "" : ",",
                     JsonQuote(n).c_str(),
                     static_cast<unsigned long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [n, v] : gauges) {
    out += StrFormat("%s\n    %s: %lld", first ? "" : ",",
                     JsonQuote(n).c_str(), static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += StrFormat(
        "%s\n    %s: {\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
        "\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"buckets\": [",
        first ? "" : ",", JsonQuote(h.name).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum), h.Mean(), h.Percentile(50),
        h.Percentile(95), h.Percentile(99));
    bool first_bucket = true;
    for (int i = 0; i < static_cast<int>(h.buckets.size()); ++i) {
      if (h.buckets[static_cast<size_t>(i)] == 0) continue;
      out += StrFormat(
          "%s[%llu, %llu]", first_bucket ? "" : ", ",
          static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
          static_cast<unsigned long long>(h.buckets[static_cast<size_t>(i)]));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics outlive every static destructor that might
  // still record into them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.buckets.resize(Histogram::kNumBuckets);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[static_cast<size_t>(i)] = h->bucket(i);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace iq
