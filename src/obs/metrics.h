#ifndef IQ_OBS_METRICS_H_
#define IQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/timer.h"

namespace iq {

/// Process-global metrics layer (zero dependencies beyond util). All hot-path
/// mutation is a relaxed atomic increment on an object obtained once from the
/// MetricsRegistry; registration takes a lock, recording never does.
///
/// Naming scheme (see DESIGN.md "Observability"):
///   iq.<subsystem>.<name>    e.g. iq.ese.queries_reranked
/// Subsystems in use: rtree, index, ese, search, engine, pool, bench.

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (sizes, occupancy).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket base-2 exponential histogram for non-negative integer samples
/// (latencies in nanoseconds, set sizes). Bucket 0 holds exactly {0}; bucket
/// i >= 1 holds [2^(i-1), 2^i); the last bucket absorbs everything above.
/// Recording is three relaxed atomic adds — safe and cheap from any thread.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;  // last finite bound 2^42 ns ~ 73 min

  void Record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[static_cast<size_t>(BucketIndex(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  void Reset();

  static int BucketIndex(uint64_t v);
  /// Smallest value belonging to bucket `i`.
  static uint64_t BucketLowerBound(int i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of one histogram, with percentile estimation
/// (interpolated inside the bucket the rank falls into).
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  // kNumBuckets entries

  double Mean() const;
  /// p in [0, 100]; 0 when empty.
  double Percentile(double p) const;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// 0 when the counter was never registered.
  uint64_t CounterValue(const std::string& name) const;
  /// nullptr when absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Aligned human-readable dump, one metric per line.
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — counters
  /// and gauges as flat name->value maps so shell tooling can grep them.
  std::string ToJson() const;
};

/// Owner of all named metrics. Returned pointers are stable for the process
/// lifetime; looking a name up twice yields the same object, so callers
/// cache the pointer (typically in a function-local static) and increment
/// lock-free afterwards.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) IQ_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) IQ_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) IQ_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const IQ_EXCLUDES(mu_);
  /// Zeroes every registered metric (names stay registered).
  void Reset() IQ_EXCLUDES(mu_);

 private:
  /// Registration/snapshot lock — a leaf in the engine's acquisition order:
  /// instrumented paths may register metrics lazily while holding any other
  /// lock in the tree (see util/lock_rank.h).
  mutable Mutex mu_{LockRank::kMetricsRegistry, "MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      IQ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ IQ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      IQ_GUARDED_BY(mu_);
};

/// Records elapsed wall-clock nanoseconds into a Histogram on destruction.
/// The canonical way to time a scope:
///   ScopedTimer t(MetricsRegistry::Global().GetHistogram("iq.x.y_nanos"));
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(timer_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Mid-scope reading, for callers that also want the raw value.
  uint64_t ElapsedNanos() const { return timer_.ElapsedNanos(); }

 private:
  Histogram* hist_;
  WallTimer timer_;
};

}  // namespace iq

#endif  // IQ_OBS_METRICS_H_
