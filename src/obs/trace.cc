#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/string_util.h"

namespace iq {

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceCollector& TraceCollector::Global() {
  // Leaked on purpose, like the metrics registry: thread_local buffer
  // pointers must never dangle during late static destruction.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  // One buffer per thread for the process lifetime. The collector is a
  // process singleton, so a per-thread static is the right granularity.
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    MutexLock lock(&mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

void TraceCollector::Record(const char* name, uint64_t start_ns,
                            uint64_t dur_ns) {
  ThreadBuffer* buf = BufferForThisThread();
  MutexLock lock(&buf->mu);
  if (buf->ring.size() < kRingCapacity) {
    buf->ring.push_back(TraceEvent{name, start_ns, dur_ns});
  } else {
    buf->ring[buf->next % kRingCapacity] = TraceEvent{name, start_ns, dur_ns};
  }
  ++buf->next;
}

std::string TraceCollector::ToJson() const {
  // Collect (event, tid) pairs under the per-buffer locks, then render
  // sorted by start time so the JSON is stable and diff-friendly.
  std::vector<std::pair<TraceEvent, int>> events;
  {
    MutexLock lock(&mu_);
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(&buf->mu);
      for (const TraceEvent& e : buf->ring) {
        events.emplace_back(e, buf->tid);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first.start_ns < b.first.start_ns;
            });
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [e, tid] : events) {
    out += StrFormat(
        "%s\n  {\"name\": \"%s\", \"cat\": \"iq\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
        first ? "" : ",", e.name, static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3, tid);
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ns\"}\n";
  return out;
}

Status TraceCollector::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

void TraceCollector::Clear() {
  MutexLock lock(&mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    buf->ring.clear();
    buf->next = 0;
  }
}

size_t TraceCollector::EventCount() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    n += buf->ring.size();
  }
  return n;
}

uint64_t TraceCollector::DroppedCount() const {
  MutexLock lock(&mu_);
  uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    if (buf->next > buf->ring.size()) {
      dropped += buf->next - buf->ring.size();
    }
  }
  return dropped;
}

}  // namespace iq
