#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace iq {

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int RetainedTrace::NumThreads() const {
  std::set<int> tids;
  for (const TraceEvent& e : spans) tids.insert(e.tid);
  return static_cast<int>(tids.size());
}

TraceCollector::TraceCollector() {
  // Metric mirrors are resolved here, with no collector lock held:
  // MetricsRegistry::mu_ ranks *below* the trace locks (kMetricsRegistry <
  // kTraceRegistry), so a lazy GetCounter inside Record/FinishRoot would
  // invert the order. Counter::Increment itself is a relaxed atomic add —
  // legal under any lock.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  dropped_counter_ = metrics.GetCounter("iq.trace.dropped");
  slow_retained_counter_ = metrics.GetCounter("iq.trace.slow_retained");
  discarded_counter_ = metrics.GetCounter("iq.trace.discarded");
}

TraceCollector& TraceCollector::Global() {
  // Leaked on purpose, like the metrics registry: thread_local buffer
  // pointers must never dangle during late static destruction.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  // One buffer per thread for the process lifetime. The collector is a
  // process singleton, so a per-thread static is the right granularity.
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    MutexLock lock(&mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

void TraceCollector::Record(TraceEvent e) {
  ThreadBuffer* buf = BufferForThisThread();
  e.tid = buf->tid;
  MutexLock lock(&buf->mu);
  if (buf->ring.size() < kRingCapacity) {
    buf->ring.push_back(e);
  } else {
    buf->ring[buf->next % kRingCapacity] = e;
    // Ring overwrite: the span falls out of tail capture. Mirrored to the
    // registry so /metrics shows trace loss the same way it shows
    // iq.eventlog.dropped.
    dropped_counter_->Increment();
  }
  ++buf->next;
}

namespace {

/// The trailing `"args": {...}` clause of one exported span; empty when the
/// span carries neither causal ids nor an arg payload (flat pre-root spans).
std::string EventArgsJson(const TraceEvent& e) {
  if (e.trace_id == 0 && e.arg0 == TraceEvent::kNoArg) return "";
  std::string args = StrFormat(
      ", \"args\": {\"trace_id\": %llu, \"span_id\": %llu, "
      "\"parent_span_id\": %llu",
      static_cast<unsigned long long>(e.trace_id),
      static_cast<unsigned long long>(e.span_id),
      static_cast<unsigned long long>(e.parent_span_id));
  if (e.arg0 != TraceEvent::kNoArg) {
    args += StrFormat(", \"arg0\": %lld", static_cast<long long>(e.arg0));
  }
  if (e.arg1 != TraceEvent::kNoArg) {
    args += StrFormat(", \"arg1\": %lld", static_cast<long long>(e.arg1));
  }
  args += "}";
  return args;
}

/// Chrome-trace thread-name metadata event ("ph": "M") for one collector
/// tid, so viewers label lanes "iq-thread-N" instead of bare integers.
std::string ThreadNameMetadataJson(int tid, bool first) {
  return StrFormat(
      "%s\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": %d, \"args\": {\"name\": \"iq-thread-%d\"}}",
      first ? "" : ",", tid, tid);
}

/// One complete-span line in Chrome trace-event JSON (timestamps in µs).
std::string SpanJson(const TraceEvent& e, bool first) {
  return StrFormat(
      "%s\n  {\"name\": \"%s\", \"cat\": \"iq\", \"ph\": \"X\", "
      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d%s}",
      first ? "" : ",", e.name, static_cast<double>(e.start_ns) / 1e3,
      static_cast<double>(e.dur_ns) / 1e3, e.tid, EventArgsJson(e).c_str());
}

}  // namespace

std::string TraceCollector::ToJson() const {
  // Collect events under the per-buffer locks, then render sorted by start
  // time so the JSON is stable and diff-friendly.
  std::vector<TraceEvent> events;
  std::vector<int> tids;
  {
    MutexLock lock(&mu_);
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(&buf->mu);
      tids.push_back(buf->tid);
      for (const TraceEvent& e : buf->ring) events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  std::sort(tids.begin(), tids.end());
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (int tid : tids) {
    out += ThreadNameMetadataJson(tid, first);
    first = false;
  }
  for (const TraceEvent& e : events) {
    out += SpanJson(e, first);
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ns\"}\n";
  return out;
}

Status TraceCollector::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

void TraceCollector::Clear() {
  MutexLock lock(&mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    buf->ring.clear();
    buf->next = 0;
  }
}

size_t TraceCollector::EventCount() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    n += buf->ring.size();
  }
  return n;
}

uint64_t TraceCollector::DroppedCount() const {
  MutexLock lock(&mu_);
  uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(&buf->mu);
    if (buf->next > buf->ring.size()) {
      dropped += buf->next - buf->ring.size();
    }
  }
  return dropped;
}

void TraceCollector::ConfigureTailCapture(const TraceTailConfig& config) {
  slow_trace_nanos_.store(config.slow_trace_nanos, std::memory_order_relaxed);
  keep_first_n_.store(config.keep_first_n, std::memory_order_relaxed);
  max_retained_.store(std::max<size_t>(1, config.max_retained),
                      std::memory_order_relaxed);
  // Restart the keep-first-N warmup under the new policy.
  roots_finished_.store(0, std::memory_order_relaxed);
}

TraceTailConfig TraceCollector::tail_config() const {
  TraceTailConfig config;
  config.slow_trace_nanos = slow_trace_nanos_.load(std::memory_order_relaxed);
  config.keep_first_n = keep_first_n_.load(std::memory_order_relaxed);
  config.max_retained = max_retained_.load(std::memory_order_relaxed);
  return config;
}

std::vector<TraceEvent> TraceCollector::CollectSpans(uint64_t trace_id) const {
  std::vector<TraceEvent> spans;
  {
    MutexLock lock(&mu_);
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(&buf->mu);
      for (const TraceEvent& e : buf->ring) {
        if (e.trace_id == trace_id) spans.push_back(e);
      }
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return spans;
}

void TraceCollector::FinishRoot(const char* op, uint64_t trace_id,
                                uint64_t start_ns, uint64_t dur_ns,
                                bool erred) {
  const uint64_t seen = roots_finished_.fetch_add(1, std::memory_order_relaxed);
  const int keep_first = keep_first_n_.load(std::memory_order_relaxed);
  const bool warmup =
      keep_first > 0 && seen < static_cast<uint64_t>(keep_first);
  const int64_t slow_ns = slow_trace_nanos_.load(std::memory_order_relaxed);
  const bool slow = slow_ns > 0 && dur_ns >= static_cast<uint64_t>(slow_ns);
  if (!erred && !slow && !warmup) {
    // The fast path of tail-based capture: discarding costs nothing — the
    // trace's spans stay in the scratch rings until overwritten, and trace
    // ids are process-unique so stale entries can never alias a later solve.
    discarded_total_.fetch_add(1, std::memory_order_relaxed);
    discarded_counter_->Increment();
    return;
  }
  RetainedTrace trace;
  trace.trace_id = trace_id;
  trace.op = op;
  trace.start_ns = start_ns;
  trace.dur_ns = dur_ns;
  trace.erred = erred;
  trace.warmup = !erred && !slow;
  // Collect under the registry/buffer locks, insert under the store lock —
  // strictly after releasing the former (kTraceBuffer < kTraceStore).
  trace.spans = CollectSpans(trace_id);
  retained_total_.fetch_add(1, std::memory_order_relaxed);
  slow_retained_counter_->Increment();
  const size_t max_retained = max_retained_.load(std::memory_order_relaxed);
  MutexLock lock(&store_mu_);
  retained_.push_back(std::move(trace));
  while (retained_.size() > max_retained) retained_.pop_front();
}

std::vector<RetainedTrace> TraceCollector::RetainedTraces() const {
  MutexLock lock(&store_mu_);
  return std::vector<RetainedTrace>(retained_.begin(), retained_.end());
}

void TraceCollector::ClearRetained() {
  MutexLock lock(&store_mu_);
  retained_.clear();
}

namespace {

/// One /tracez span line. Line-oriented on purpose: tools/iq_trace and
/// tests/check_metrics.sh re-ingest the payload with a tolerant line scanner
/// (the obs/profile.h idiom) instead of a JSON parser.
std::string TracezSpanLine(const TraceEvent& e) {
  std::string line = StrFormat(
      "{\"span\": {\"trace_id\": %llu, \"span_id\": %llu, "
      "\"parent_span_id\": %llu, \"name\": \"%s\", \"tid\": %d, "
      "\"start_ns\": %llu, \"dur_ns\": %llu",
      static_cast<unsigned long long>(e.trace_id),
      static_cast<unsigned long long>(e.span_id),
      static_cast<unsigned long long>(e.parent_span_id), e.name, e.tid,
      static_cast<unsigned long long>(e.start_ns),
      static_cast<unsigned long long>(e.dur_ns));
  if (e.arg0 != TraceEvent::kNoArg) {
    line += StrFormat(", \"arg0\": %lld", static_cast<long long>(e.arg0));
  }
  if (e.arg1 != TraceEvent::kNoArg) {
    line += StrFormat(", \"arg1\": %lld", static_cast<long long>(e.arg1));
  }
  line += "}}";
  return line;
}

std::string TracezSummaryLine(const RetainedTrace& t) {
  return StrFormat(
      "{\"trace_summary\": {\"trace_id\": %llu, \"op\": \"%s\", "
      "\"start_ns\": %llu, \"dur_ns\": %llu, \"erred\": %s, "
      "\"warmup\": %s, \"num_spans\": %zu, \"num_threads\": %d}}",
      static_cast<unsigned long long>(t.trace_id),
      t.op != nullptr ? t.op : "?",
      static_cast<unsigned long long>(t.start_ns),
      static_cast<unsigned long long>(t.dur_ns), t.erred ? "true" : "false",
      t.warmup ? "true" : "false", t.spans.size(), t.NumThreads());
}

}  // namespace

std::string TraceCollector::TracezJson() const {
  const TraceTailConfig config = tail_config();
  const std::vector<RetainedTrace> traces = RetainedTraces();
  std::string out = "{\"tracez\": {\n";
  out += StrFormat(
      "\"config\": {\"slow_trace_nanos\": %lld, \"keep_first_n\": %d, "
      "\"max_retained\": %zu},\n",
      static_cast<long long>(config.slow_trace_nanos), config.keep_first_n,
      config.max_retained);
  out += StrFormat(
      "\"counters\": {\"dropped\": %llu, \"slow_retained\": %llu, "
      "\"discarded\": %llu},\n",
      static_cast<unsigned long long>(DroppedCount()),
      static_cast<unsigned long long>(retained_total()),
      static_cast<unsigned long long>(discarded_total()));
  out += "\"traces\": [";
  bool first = true;
  for (const RetainedTrace& t : traces) {
    out += StrFormat("%s\n%s", first ? "" : ",", TracezSummaryLine(t).c_str());
    first = false;
    for (const TraceEvent& e : t.spans) {
      out += StrFormat(",\n%s", TracezSpanLine(e).c_str());
    }
  }
  out += "\n]\n}}\n";
  return out;
}

std::string TraceCollector::TraceJson(uint64_t trace_id) const {
  RetainedTrace trace;
  bool found = false;
  {
    MutexLock lock(&store_mu_);
    for (const RetainedTrace& t : retained_) {
      if (t.trace_id == trace_id) {
        trace = t;
        found = true;
        break;
      }
    }
  }
  if (!found) return "";
  // tid per span id, for the cross-thread flow arrows below.
  std::map<uint64_t, int> span_tid;
  std::set<int> tids;
  for (const TraceEvent& e : trace.spans) {
    span_tid[e.span_id] = e.tid;
    tids.insert(e.tid);
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (int tid : tids) {
    out += ThreadNameMetadataJson(tid, first);
    first = false;
  }
  for (const TraceEvent& e : trace.spans) {
    out += SpanJson(e, first);
    first = false;
    // Cross-thread parentage is invisible in a per-lane view; a flow arrow
    // from the parent's lane to the child's start makes the causal hop
    // explicit in Perfetto. Same-thread children just nest visually.
    auto parent = span_tid.find(e.parent_span_id);
    if (parent == span_tid.end() || parent->second == e.tid) continue;
    const double ts = static_cast<double>(e.start_ns) / 1e3;
    out += StrFormat(
        ",\n  {\"name\": \"parent\", \"cat\": \"iq.flow\", \"ph\": \"s\", "
        "\"id\": %llu, \"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
        static_cast<unsigned long long>(e.span_id), ts, parent->second);
    out += StrFormat(
        ",\n  {\"name\": \"parent\", \"cat\": \"iq.flow\", \"ph\": \"f\", "
        "\"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, \"pid\": 1, "
        "\"tid\": %d}",
        static_cast<unsigned long long>(e.span_id), ts, e.tid);
  }
  out += "\n], \"displayTimeUnit\": \"ns\"}\n";
  return out;
}

}  // namespace iq
