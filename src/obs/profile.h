#ifndef IQ_OBS_PROFILE_H_
#define IQ_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/lock_rank.h"
#include "util/prof.h"

// Scalability-profile aggregation (DESIGN.md §11). util/prof.h captures the
// raw material — per-thread mutex slots, ParallelFor chunk spans, worker
// state timelines — and this module turns one capture window into a
// ProfileReport answering the question the flat micro_parallel speedup
// raises: *where does the wall-clock go when threads are added?*
//
//   * per-mutex-site wait/held totals, ranked — lock contention;
//   * per-ParallelFor-site coverage, chunk counts and imbalance
//     (max / median chunk duration) — parallel-region health;
//   * a serial-fraction estimate (1 - union(chunk spans)/window) and the
//     Amdahl speedup it projects at 2/4/8/16 threads — the structural
//     ceiling no amount of threads moves.
//
// Reports export three ways: line-oriented JSON (ToJson — tools/iq_prof
// re-ingests it with ParseProfileReports), Chrome-trace spans
// (ChromeTraceJson, load in chrome://tracing or Perfetto), and gauges on the
// /metrics endpoint (PublishProfileMetrics). The exporter serves the live
// report at /profilez.

namespace iq {

/// One mutex construction site, aggregated over the window.
struct MutexSiteReport {
  std::string label;      // construction-site label ("IqEngine::mu_")
  std::string rank;       // LockRankName(rank)
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  uint64_t wait_nanos = 0;
  uint64_t max_wait_nanos = 0;
  uint64_t held_nanos = 0;
};

/// One ParallelFor call site, aggregated over the window.
struct ParallelSiteReport {
  std::string site;       // call-site label ("engine.solve_batch")
  uint64_t calls = 0;     // distinct ParallelFor invocations
  uint64_t chunks = 0;    // executed chunks
  int64_t items = 0;      // total items across chunks
  uint64_t busy_nanos = 0;        // sum of chunk durations (cpu-seconds-ish)
  uint64_t coverage_nanos = 0;    // union of this site's spans (wall clock)
  uint64_t median_chunk_nanos = 0;
  uint64_t max_chunk_nanos = 0;
  /// max / median chunk duration; 1.0 = perfectly even, large = one straggler
  /// chunk serializes the call's tail.
  double imbalance = 1.0;
  /// Work-stealing telemetry (ChunkPolicy::kDynamic sites): individual item
  /// claims folded into the recorded spans, and how many of those claims
  /// were beyond the claimant's fair share of the range — work it took off
  /// an overloaded peer. Static sites report claims == chunks, steals == 0.
  uint64_t claims = 0;
  uint64_t steals = 0;
};

/// One pool worker's busy/idle split over the window.
struct WorkerReport {
  uint32_t worker = 0;
  uint64_t running_nanos = 0;
  uint64_t idle_nanos = 0;
};

/// Aggregated view of one capture window.
struct ProfileReport {
  std::string label;          // caller-chosen window name ("threads=4")
  bool enabled = true;        // false: placeholder from a disabled process
  uint64_t window_nanos = 0;  // wall-clock length of the window
  uint64_t coverage_nanos = 0;   // union of ALL chunk spans in the window
  double serial_fraction = 1.0;  // 1 - coverage/window (1.0 = no parallelism)
  uint64_t total_wait_nanos = 0;  // sum of mutex wait over all sites
  uint64_t dropped_records = 0;   // capture-buffer overflow (see util/prof.h)
  std::vector<MutexSiteReport> mutexes;         // sorted by wait desc
  std::vector<ParallelSiteReport> parallel_sites;  // sorted by busy desc
  std::vector<WorkerReport> workers;            // sorted by worker id

  /// Amdahl projection from serial_fraction: 1 / (s + (1-s)/n).
  double ProjectedSpeedup(int n) const;

  /// Line-oriented JSON: every record on its own line with distinctive keys
  /// ("profile_label", "mutex", "site", "worker"), so ParseProfileReports
  /// can re-ingest it with a tolerant line scanner — no JSON library in the
  /// tree. The output is nonetheless valid JSON.
  std::string ToJson() const;
};

/// Builds a report from the current util/prof.h capture buffers over
/// [window_start_ns, window_end_ns] on the capture clock. Records outside
/// the window are clipped (spans) or included as-is (mutex slots are
/// cumulative since the last Reset — callers Reset at window start).
ProfileReport BuildProfileReport(const std::string& label,
                                 uint64_t window_start_ns,
                                 uint64_t window_end_ns);

/// Start/stop wrapper the benches use: Start() resets capture and enables
/// profiling; Stop(label) disables it and aggregates the window. Not
/// thread-safe — one session at a time, owned by the driver (main thread).
class ProfileSession {
 public:
  void Start();
  ProfileReport Stop(const std::string& label);
  bool active() const { return active_; }

 private:
  bool active_ = false;
  uint64_t start_ns_ = 0;
};

/// The live report the exporter serves at /profilez: the window is
/// [EnabledSinceNanos(), now] while profiling is on; a `"enabled": false`
/// placeholder report otherwise. Always valid JSON with a "profile_label"
/// line, so scrapers need no special empty case.
std::string CurrentProfileJson();

/// Chrome-trace (chrome://tracing / Perfetto) JSON of the raw capture:
/// one complete event ("ph":"X") per ParallelFor chunk, tid = worker id.
std::string ChromeTraceJson();

/// Publishes a report's headline numbers as gauges on the global metrics
/// registry, using embedded-label names the exporter renders as Prometheus
/// labels (label blocks are `{key=value}` — no quotes — see
/// RenderPrometheusText):
///   iq.lock.wait_nanos{rank=kEngine}       total wait per lock rank
///   iq.pool.chunk_imbalance{site=...}      imbalance in thousandths
///                                          (gauges are integers; 2500 = 2.5x)
void PublishProfileMetrics(const ProfileReport& report);

// ---- ingestion + reporting (the tools/iq_prof core, testable in-process) --

/// Parses every ProfileReport found in `text` — a single ToJson() report, a
/// /profilez scrape, or a micro_parallel --profile= dump with a "profiles"
/// array. Tolerant line scanner: unknown lines are skipped, a
/// "profile_label" line starts a new report.
std::vector<ProfileReport> ParseProfileReports(const std::string& text);

/// Names the dominant serialization mechanism in one report: lock
/// contention (top mutex by wait when wait is a meaningful window share),
/// chunk imbalance, or — the common case on this workload — serial-fraction
/// ceiling. One sentence, suitable for pasting into DESIGN.md.
std::string ProfileVerdict(const ProfileReport& report);

/// Human-readable ranked serialization report over one or more windows
/// (typically one per thread count): per-window serial fraction and Amdahl
/// projections, top `top_n` mutexes by wait, parallel sites with imbalance,
/// worker busy/idle split, and a final verdict from the last window.
std::string FormatSerializationReport(
    const std::vector<ProfileReport>& reports, int top_n);

/// Machine form of the same: {"iq_prof": {"num_profiles": N, "verdict":
/// "...", "profiles": [...]}} — consumed by tools/check_metrics.sh
/// --profile and CI.
std::string SerializationReportJson(
    const std::vector<ProfileReport>& reports);

}  // namespace iq

#endif  // IQ_OBS_PROFILE_H_
