#ifndef IQ_OBS_TRACE_ANALYSIS_H_
#define IQ_OBS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

// Slow-trace ingestion + analysis (DESIGN.md §14) — the tools/iq_trace core,
// testable in-process like the obs/profile.h half of iq_prof. Consumes a
// /tracez payload (scraped live or dumped by micro_parallel
// --scrape-tracez=) and answers the question tail capture exists to answer:
// *where did this slow solve spend its wall-clock?* For each retained trace
// it reconstructs the span tree, walks the critical path (at every span,
// descend into the child whose interval ends last), attributes self time
// along it, and rolls up per-name self time across the whole trace.

namespace iq {

/// One span parsed back from a /tracez dump. Mirrors TraceEvent with owned
/// strings (the dump outlives no static literals).
struct ParsedSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  int tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  int64_t arg0 = TraceEvent::kNoArg;
  int64_t arg1 = TraceEvent::kNoArg;
};

/// One retained trace parsed back from a /tracez dump.
struct ParsedTrace {
  uint64_t trace_id = 0;
  std::string op;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  bool erred = false;
  bool warmup = false;
  int num_threads = 0;
  std::vector<ParsedSpan> spans;
};

/// A whole /tracez payload: retention config, loss/retain counters, traces.
struct TraceDump {
  TraceTailConfig config;
  uint64_t dropped = 0;
  uint64_t slow_retained = 0;
  uint64_t discarded = 0;
  std::vector<ParsedTrace> traces;
};

/// Parses a /tracez payload (or anything containing its "trace_summary" /
/// "span" lines). Tolerant line scanner in the obs/profile.h idiom: unknown
/// lines are skipped, a "trace_summary" line starts a new trace, "span"
/// lines attach to the most recent one — no JSON library in the tree.
TraceDump ParseTracezDump(const std::string& text);

/// One hop of a trace's critical path.
struct CriticalPathStep {
  std::string name;
  uint64_t span_id = 0;
  int tid = 0;
  uint64_t dur_ns = 0;
  /// This span's duration minus the chosen child's — wall-clock the path
  /// spent *here* rather than deeper in the tree.
  uint64_t self_ns = 0;
};

/// Per-span-name self time over one whole trace (duration minus the sum of
/// direct children), the "who burned the time" ranking.
struct SelfTimeRollup {
  std::string name;
  uint64_t self_ns = 0;
  uint64_t spans = 0;
};

/// Everything iq_trace reports about one retained trace.
struct TraceAnalysis {
  uint64_t trace_id = 0;
  std::string op;
  uint64_t dur_ns = 0;
  bool erred = false;
  int num_threads = 0;
  size_t num_spans = 0;
  /// Root-to-leaf walk descending into the latest-ending child at each
  /// level. Because child intervals nest inside their parents, the steps'
  /// self times telescope back to the root duration.
  std::vector<CriticalPathStep> critical_path;
  /// Sum of self times along the path, and its share of the root duration.
  /// A healthy causal trace accounts for ~100% of the wall clock; a low
  /// fraction means orphaned spans (ring overwrites ate the parents).
  uint64_t accounted_ns = 0;
  double accounted_fraction = 0.0;
  std::vector<SelfTimeRollup> self_time;  // sorted by self_ns desc
};

/// Reconstructs the span tree and computes the critical path + rollups.
/// Traces without a root span (parent_span_id == 0) yield an analysis with
/// an empty critical_path and accounted_fraction 0.
TraceAnalysis AnalyzeTrace(const ParsedTrace& trace);

/// One sentence naming where the slow solve's wall-clock went — the span
/// name with the largest self time on the critical path — or what kept the
/// trace (error, warmup) when timing says nothing interesting.
std::string TraceVerdict(const TraceAnalysis& analysis);

/// Human-readable report over a whole dump: retention config and loss
/// counters, then per trace the critical path (top `top_n` steps by self
/// time kept, in path order), the self-time ranking, and a verdict.
std::string FormatTraceReport(const TraceDump& dump, int top_n);

/// Machine form of the same: {"iq_trace": {"num_traces": N, ...}} with one
/// "trace_analysis" / "path_step" / "self_time" object per line — consumed
/// by tools/check_metrics.sh --trace and the trace-smoke CI lane.
std::string TraceReportJson(const TraceDump& dump);

}  // namespace iq

#endif  // IQ_OBS_TRACE_ANALYSIS_H_
