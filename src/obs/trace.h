#ifndef IQ_OBS_TRACE_H_
#define IQ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"
#include "util/trace_context.h"

// Causal, request-scoped tracing with tail-based slow-solve capture
// (DESIGN.md §14). Two layers:
//
//  * Scoped spans (PR 2, upgraded): IQ_TRACE_SCOPE("name") records a
//    completed scope into the calling thread's ring buffer. Spans now carry
//    a trace id / span id / parent span id read from the thread's
//    util/trace_context.h slot, which ThreadPool::ParallelFor propagates
//    into every chunk body — so the spans of one solve link into a tree
//    even when they ran on different workers.
//
//  * Root spans + tail retention: IQ_TRACE_ROOT_SCOPE(root, "op") opens a
//    *root* span at a solve entry point (MinCost / MaxHit / ApplyStrategy /
//    SolveBatch). It allocates a fresh trace id, installs the context, and
//    at destruction asks the collector to keep or discard the whole trace:
//    retained iff the solve erred, its latency cleared the configured
//    slow-trace threshold, or it fell in the keep-first-N warmup — into a
//    bounded last-K store served at /tracez. Discarding is free (the scratch
//    rings are simply left to be overwritten), which is what makes always-on
//    capture affordable in production. A TraceRoot constructed while a trace
//    is already active joins it as a child span instead (per-item roots
//    inside a SolveBatch root), so one batch is one trace.
//
// Construction of TraceScope / TraceRoot outside this header is banned by
// iq_lint (direct-trace-record): instrumented code must use the macros so
// the compile-time gate (IQ_ENABLE_TRACING) keeps working.
//
// Two gates keep all of this off the hot path:
//  * build time — configure with -DIQ_ENABLE_TRACING=OFF and the macros
//    compile to nothing (the default presets keep it ON);
//  * run time — collection starts only after SetEnabled(true) (the engine
//    flips it when EngineOptions::slow_trace_nanos > 0); a disabled scope
//    costs a single relaxed atomic load
//    (bench/micro_solver.cc BM_TraceOverheadDisabled gates this).

namespace iq {

class Counter;

/// Monotonic clock for trace timestamps. Lives in src/obs/ (with
/// util/timer.h, the only sanctioned direct steady_clock user — see
/// tools/lint.sh).
uint64_t TraceNowNanos();

/// One completed span. `name` must have static storage duration (the macros
/// pass string literals); the collector stores the pointer, not a copy.
/// trace/span/parent ids are 0 for flat spans recorded outside any root.
struct TraceEvent {
  /// "unset" sentinel for the fixed arg payload (args are small facts like
  /// a candidate index or an epoch id, rendered only when set).
  static constexpr int64_t kNoArg = INT64_MIN;

  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Collector-assigned id of the recording thread (stamped by Record).
  int tid = 0;
  int64_t arg0 = kNoArg;
  int64_t arg1 = kNoArg;
};

/// Tail-based retention policy (DESIGN.md §14). All three knobs combine
/// with OR: a finished root trace is retained if it erred, OR ran at least
/// `slow_trace_nanos` (when > 0), OR was one of the first `keep_first_n`
/// roots since configuration (warmup — so a fresh process always has a few
/// example traces even before anything is slow).
struct TraceTailConfig {
  int64_t slow_trace_nanos = 0;
  int keep_first_n = 0;
  size_t max_retained = 32;
};

/// One retained trace: the root solve's identity plus every span collected
/// from the scratch rings, sorted by start time.
struct RetainedTrace {
  uint64_t trace_id = 0;
  const char* op = nullptr;  // root span name ("IqEngine::SolveBatch")
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  bool erred = false;
  /// Retained by the keep-first-N warmup rather than by latency/error.
  bool warmup = false;
  std::vector<TraceEvent> spans;

  /// Distinct recording threads among `spans`.
  int NumThreads() const;
};

class TraceCollector {
 public:
  /// Events kept per thread; older events are overwritten once full.
  static constexpr size_t kRingCapacity = 1 << 13;

  static TraceCollector& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Allocates a process-unique nonzero span/trace id.
  uint64_t NewId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed span to the calling thread's ring buffer, stamping
  /// the thread's collector tid. Overwrites the oldest span when the ring
  /// is full (mirrored to iq.trace.dropped).
  void Record(TraceEvent e);

  /// All buffered events (every thread), in Chrome trace-event JSON with
  /// per-thread tids and thread-name metadata events (the flat PR 2 export,
  /// kept for whole-process captures like examples/trace_demo.cpp).
  std::string ToJson() const;
  /// ToJson() written to `path`.
  Status WriteJson(const std::string& path) const;

  /// Drops all buffered events (buffers stay registered to their threads).
  void Clear();

  /// Buffered events across all threads (ring overwrites included), and how
  /// many were overwritten — exposed so tests can assert ring semantics.
  size_t EventCount() const;
  uint64_t DroppedCount() const;

  // ---- tail-based capture (root spans; DESIGN.md §14) ----

  /// Installs the retention policy. Takes effect for roots finishing after
  /// the call; resets the keep-first-N warmup counter.
  void ConfigureTailCapture(const TraceTailConfig& config);
  TraceTailConfig tail_config() const;

  /// Called by a finishing TraceRoot that owns its trace: applies the
  /// retention policy and, when the trace is kept, collects its spans from
  /// every thread's ring into the bounded last-K store. Not user API — the
  /// root-span macro is the entry point.
  void FinishRoot(const char* op, uint64_t trace_id, uint64_t start_ns,
                  uint64_t dur_ns, bool erred);

  /// The retained slow traces, oldest first.
  std::vector<RetainedTrace> RetainedTraces() const;
  /// Drops all retained traces (counters keep running).
  void ClearRetained();

  /// Roots retained / discarded since process start (also mirrored to the
  /// metrics registry as iq.trace.slow_retained / iq.trace.discarded).
  uint64_t retained_total() const {
    return retained_total_.load(std::memory_order_relaxed);
  }
  uint64_t discarded_total() const {
    return discarded_total_.load(std::memory_order_relaxed);
  }

  /// The /tracez payload: retention config, drop/retain counters, and every
  /// retained trace with its spans. Line-oriented JSON (one "trace_summary"
  /// or "span" object per line) so tools/iq_trace re-ingests it with a
  /// tolerant line scanner — same idiom as obs/profile.h reports.
  std::string TracezJson() const;

  /// Single-trace Perfetto/Chrome JSON for a retained trace: "X" spans with
  /// real per-thread tids, thread-name metadata events, and flow arrows
  /// binding cross-thread child spans to their parents. Empty string when
  /// `trace_id` is not in the store.
  std::string TraceJson(uint64_t trace_id) const;

 private:
  struct ThreadBuffer {
    /// Uncontended in steady state: only the owning thread records, and the
    /// lock is shared with readers only while a flush is running (which
    /// holds the registry lock first — hence the higher rank).
    Mutex mu{LockRank::kTraceBuffer, "TraceBuffer::mu"};
    /// Assigned once at registration, under the collector's mu_; read-only
    /// afterwards.  // iq-lint: allow(unguarded-member)
    int tid = 0;  // iq-lint: allow(unguarded-member)
    std::vector<TraceEvent> ring IQ_GUARDED_BY(mu);
    /// Events recorded since the last Clear(); next % kRingCapacity is the
    /// overwrite cursor, next - ring.size() the number overwritten.
    size_t next IQ_GUARDED_BY(mu) = 0;
  };

  TraceCollector();

  ThreadBuffer* BufferForThisThread();

  /// Copies every buffered span of `trace_id` out of the rings, sorted by
  /// (start_ns, span_id).
  std::vector<TraceEvent> CollectSpans(uint64_t trace_id) const;

  mutable Mutex mu_{LockRank::kTraceRegistry, "TraceCollector::mu_"};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ IQ_GUARDED_BY(mu_);
  int next_tid_ IQ_GUARDED_BY(mu_) = 1;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};

  // Tail-capture state. Config knobs are relaxed atomics so the per-root
  // discard decision takes no lock.
  std::atomic<int64_t> slow_trace_nanos_{0};
  std::atomic<int> keep_first_n_{0};
  std::atomic<size_t> max_retained_{32};
  std::atomic<uint64_t> roots_finished_{0};
  std::atomic<uint64_t> retained_total_{0};
  std::atomic<uint64_t> discarded_total_{0};

  /// Bounded last-K slow-trace store. Rank kTraceStore: only ever taken
  /// with no other trace lock held (FinishRoot collects first, inserts
  /// after releasing the registry/buffer locks).
  mutable Mutex store_mu_{LockRank::kTraceStore, "TraceCollector::store_mu_"};
  std::deque<RetainedTrace> retained_ IQ_GUARDED_BY(store_mu_);

  /// Metric mirrors (iq.trace.*), resolved once in the constructor so
  /// incrementing under the ring locks is a lock-free atomic add.
  Counter* dropped_counter_ = nullptr;        // iq-lint: allow(unguarded-member)
  Counter* slow_retained_counter_ = nullptr;  // iq-lint: allow(unguarded-member)
  Counter* discarded_counter_ = nullptr;      // iq-lint: allow(unguarded-member)
};

/// RAII body of IQ_TRACE_SCOPE. The enabled check happens at construction;
/// a scope that started while tracing was on is recorded even if tracing is
/// switched off before it closes. While open, the scope is the thread's
/// current span (children recorded inside parent under it).
class TraceScope {
 public:
  explicit TraceScope(const char* name,
                      int64_t arg0 = TraceEvent::kNoArg,
                      int64_t arg1 = TraceEvent::kNoArg) {
    TraceCollector& tc = TraceCollector::Global();
    if (!tc.enabled()) return;
    name_ = name;
    arg0_ = arg0;
    arg1_ = arg1;
    const TraceContext ctx = CurrentTraceContext();
    trace_id_ = ctx.trace_id;
    parent_span_id_ = ctx.span_id;
    span_id_ = tc.NewId();
    SetTraceContext(TraceContext{trace_id_, span_id_});
    start_ns_ = TraceNowNanos();
  }
  ~TraceScope() {
    if (name_ == nullptr) return;
    const uint64_t end_ns = TraceNowNanos();
    SetTraceContext(TraceContext{trace_id_, parent_span_id_});
    TraceEvent e;
    e.name = name_;
    e.trace_id = trace_id_;
    e.span_id = span_id_;
    e.parent_span_id = parent_span_id_;
    e.start_ns = start_ns_;
    e.dur_ns = end_ns - start_ns_;
    e.arg0 = arg0_;
    e.arg1 = arg1_;
    TraceCollector::Global().Record(e);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_ns_ = 0;
  int64_t arg0_ = TraceEvent::kNoArg;
  int64_t arg1_ = TraceEvent::kNoArg;
};

/// RAII body of IQ_TRACE_ROOT_SCOPE: the root span of one solve. Allocates
/// a fresh trace id and owns the keep/discard decision at destruction —
/// unless a trace is already active on the thread, in which case it joins
/// as a plain child span (per-item roots inside a SolveBatch trace) and the
/// enclosing root decides. The engine stamps trace_id() onto the flight
/// recorder's solve events and calls NoteError() on failed solves so erred
/// traces are always retained.
class TraceRoot {
 public:
  explicit TraceRoot(const char* op,
                     int64_t arg0 = TraceEvent::kNoArg,
                     int64_t arg1 = TraceEvent::kNoArg) {
    TraceCollector& tc = TraceCollector::Global();
    if (!tc.enabled()) return;
    op_ = op;
    arg0_ = arg0;
    arg1_ = arg1;
    prev_ = CurrentTraceContext();
    if (prev_.active()) {
      trace_id_ = prev_.trace_id;
      parent_span_id_ = prev_.span_id;
      span_id_ = tc.NewId();
      owns_trace_ = false;
    } else {
      // The root span's id doubles as the trace id.
      trace_id_ = tc.NewId();
      span_id_ = trace_id_;
      parent_span_id_ = 0;
      owns_trace_ = true;
    }
    SetTraceContext(TraceContext{trace_id_, span_id_});
    start_ns_ = TraceNowNanos();
  }
  ~TraceRoot() {
    if (op_ == nullptr) return;
    const uint64_t end_ns = TraceNowNanos();
    SetTraceContext(prev_);
    TraceEvent e;
    e.name = op_;
    e.trace_id = trace_id_;
    e.span_id = span_id_;
    e.parent_span_id = parent_span_id_;
    e.start_ns = start_ns_;
    e.dur_ns = end_ns - start_ns_;
    e.arg0 = arg0_;
    e.arg1 = arg1_;
    TraceCollector& tc = TraceCollector::Global();
    tc.Record(e);
    if (owns_trace_) {
      tc.FinishRoot(op_, trace_id_, start_ns_, end_ns - start_ns_, erred_);
    }
  }

  TraceRoot(const TraceRoot&) = delete;
  TraceRoot& operator=(const TraceRoot&) = delete;

  /// Marks the solve as failed: the trace is retained regardless of
  /// latency. No-op for joined (non-owning) roots — the enclosing solve
  /// fails too and its root retains the shared trace.
  void NoteError() { erred_ = true; }

  /// The id stamped on this solve's spans and flight-recorder events;
  /// 0 when tracing is disabled.
  uint64_t trace_id() const { return trace_id_; }

  /// False when this root joined an enclosing trace instead of starting
  /// its own.
  bool owns_trace() const { return owns_trace_; }

 private:
  const char* op_ = nullptr;
  TraceContext prev_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_ns_ = 0;
  int64_t arg0_ = TraceEvent::kNoArg;
  int64_t arg1_ = TraceEvent::kNoArg;
  bool owns_trace_ = false;
  bool erred_ = false;
};

/// Compiled-out stand-in for TraceRoot: same surface, no code.
struct NoopTraceRoot {
  explicit NoopTraceRoot(const char* /*op*/, int64_t /*arg0*/ = 0,
                         int64_t /*arg1*/ = 0) {}
  void NoteError() {}
  uint64_t trace_id() const { return 0; }
  bool owns_trace() const { return false; }
};

}  // namespace iq

#if defined(IQ_TRACING_ENABLED)
#define IQ_TRACE_CONCAT2_(a, b) a##b
#define IQ_TRACE_CONCAT_(a, b) IQ_TRACE_CONCAT2_(a, b)
#define IQ_TRACE_SCOPE(name) \
  ::iq::TraceScope IQ_TRACE_CONCAT_(iq_trace_scope_, __LINE__)(name)
/// Span with a small fixed arg payload (candidate index, epoch id, ...).
#define IQ_TRACE_SCOPE_ARG(name, a0) \
  ::iq::TraceScope IQ_TRACE_CONCAT_(iq_trace_scope_, __LINE__)( \
      name, static_cast<int64_t>(a0))
#define IQ_TRACE_SCOPE_ARG2(name, a0, a1)                        \
  ::iq::TraceScope IQ_TRACE_CONCAT_(iq_trace_scope_, __LINE__)(  \
      name, static_cast<int64_t>(a0), static_cast<int64_t>(a1))
/// Root span of one solve; declares `var` so the call site can reach
/// NoteError() / trace_id().
#define IQ_TRACE_ROOT_SCOPE(var, op, ...) \
  ::iq::TraceRoot var(op __VA_OPT__(, ) __VA_ARGS__)
#else
#define IQ_TRACE_SCOPE(name) static_cast<void>(0)
#define IQ_TRACE_SCOPE_ARG(name, a0) static_cast<void>(0)
#define IQ_TRACE_SCOPE_ARG2(name, a0, a1) static_cast<void>(0)
#define IQ_TRACE_ROOT_SCOPE(var, op, ...) ::iq::NoopTraceRoot var(op)
#endif

#endif  // IQ_OBS_TRACE_H_
