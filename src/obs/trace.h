#ifndef IQ_OBS_TRACE_H_
#define IQ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

// Scoped tracing with Chrome-trace export. Usage on an instrumented path:
//
//   IQ_TRACE_SCOPE("SubdomainIndex::Build");
//
// Events land in a per-thread ring buffer and are flushed on demand with
// TraceCollector::Global().WriteJson(path); the file loads directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Two gates keep this off the hot path:
//  * build time — configure with -DIQ_ENABLE_TRACING=OFF and the macro
//    compiles to nothing (the default presets keep it ON);
//  * run time — collection starts only after SetEnabled(true); a disabled
//    scope costs a single relaxed atomic load.

namespace iq {

/// Monotonic clock for trace timestamps. Lives in src/obs/ (with
/// util/timer.h, the only sanctioned direct steady_clock user — see
/// tools/lint.sh).
uint64_t TraceNowNanos();

/// One completed scope. `name` must have static storage duration (the macro
/// passes string literals); the collector stores the pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

class TraceCollector {
 public:
  /// Events kept per thread; older events are overwritten once full.
  static constexpr size_t kRingCapacity = 1 << 13;

  static TraceCollector& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed scope to the calling thread's ring buffer.
  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns);

  /// All buffered events (every thread), in Chrome trace-event JSON.
  std::string ToJson() const;
  /// ToJson() written to `path`.
  Status WriteJson(const std::string& path) const;

  /// Drops all buffered events (buffers stay registered to their threads).
  void Clear();

  /// Buffered events across all threads (ring overwrites included), and how
  /// many were overwritten — exposed so tests can assert ring semantics.
  size_t EventCount() const;
  uint64_t DroppedCount() const;

 private:
  struct ThreadBuffer {
    /// Uncontended in steady state: only the owning thread records, and the
    /// lock is shared with readers only while a flush is running (which
    /// holds the registry lock first — hence the higher rank).
    Mutex mu{LockRank::kTraceBuffer, "TraceBuffer::mu"};
    /// Assigned once at registration, under the collector's mu_; read-only
    /// afterwards.  // iq-lint: allow(unguarded-member)
    int tid = 0;  // iq-lint: allow(unguarded-member)
    std::vector<TraceEvent> ring IQ_GUARDED_BY(mu);
    /// Events recorded since the last Clear(); next % kRingCapacity is the
    /// overwrite cursor, next - ring.size() the number overwritten.
    size_t next IQ_GUARDED_BY(mu) = 0;
  };

  TraceCollector() = default;

  ThreadBuffer* BufferForThisThread();

  mutable Mutex mu_{LockRank::kTraceRegistry, "TraceCollector::mu_"};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ IQ_GUARDED_BY(mu_);
  int next_tid_ IQ_GUARDED_BY(mu_) = 1;
  std::atomic<bool> enabled_{false};
};

/// RAII body of IQ_TRACE_SCOPE. The enabled check happens at construction;
/// a scope that started while tracing was on is recorded even if tracing is
/// switched off before it closes.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (TraceCollector::Global().enabled()) {
      name_ = name;
      start_ns_ = TraceNowNanos();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      TraceCollector::Global().Record(name_, start_ns_,
                                      TraceNowNanos() - start_ns_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace iq

#if defined(IQ_TRACING_ENABLED)
#define IQ_TRACE_CONCAT2_(a, b) a##b
#define IQ_TRACE_CONCAT_(a, b) IQ_TRACE_CONCAT2_(a, b)
#define IQ_TRACE_SCOPE(name) \
  ::iq::TraceScope IQ_TRACE_CONCAT_(iq_trace_scope_, __LINE__)(name)
#else
#define IQ_TRACE_SCOPE(name) static_cast<void>(0)
#endif

#endif  // IQ_OBS_TRACE_H_
